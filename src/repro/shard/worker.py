"""One shard: a worker-local cluster advanced in epochs between barriers.

A :class:`ShardWorld` owns a subset of the sharded run's machines -- each
with its own kernel and power-container facility on one shard-local
simulator -- and a host that plays the dispatcher's machine-side role:
inject delivered tickets, collect replies into the outbox, fail over
in-flight work when a machine crashes.

Shard-count invariance is by construction: machines share no state and no
RNG (all request randomness is sampled coordinator-side into the ticket),
and every cross-machine interaction goes through the coordinator with
epoch-barrier delivery even when source and destination happen to share a
shard.  Co-resident machines' events interleave on the shard simulator,
but nothing one machine does can be observed by another, so each
machine's evolution -- service times, attributed energy, reply order per
machine -- is a pure function of its own delivered directives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checkpoint.state import payload_digest
from repro.kernel import ContextTag, Message
from repro.server.cluster import ClusterMachine, HeterogeneousCluster
from repro.server.dispatch import DispatchTicket
from repro.shard.messages import (
    DIRECTIVE_CRASH,
    DIRECTIVE_INJECT,
    DIRECTIVE_RECOVER,
    CompletionRecord,
    FailoverRecord,
    validate_directive,
)
from repro.telemetry import FrameDrain, Telemetry

#: Legal per-shard telemetry modes: no handle at all, an attached but
#: disabled handle (the neutrality/overhead arm), or full frame shipping.
SHARD_TELEMETRY_MODES = ("off", "disabled", "on")


@dataclass(frozen=True)
class ShardConfig:
    """Plain-data recipe for building one shard's world.

    ``machines`` lists ``(name, spec_name)`` in cluster insertion order;
    ``workload`` names the workload kind every machine serves ("solr" or
    "chaos").  A shard rebuilt from the same config and replayed from the
    same directive history reproduces its state bit-for-bit -- the
    property worker-crash recovery rests on.

    ``telemetry`` selects the shard's observability mode: ``"off"`` (no
    handle -- the pre-telemetry code paths, byte-identical), ``"disabled"``
    (a handle with ``enabled=False`` -- one attribute check per site), or
    ``"on"`` (record everything and ship a telemetry frame each barrier).
    Frames are a pure function of config + directives, so replay after a
    worker crash regenerates them bit-for-bit.
    """

    shard_id: int
    machines: tuple[tuple[str, str], ...]
    workload: str
    telemetry: str = "off"
    telemetry_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError(
                f"shard_id must be non-negative, got {self.shard_id!r}"
            )
        if not self.workload:
            raise ValueError("workload must be a non-empty kind name")
        if self.telemetry not in SHARD_TELEMETRY_MODES:
            raise ValueError(
                f"telemetry mode must be one of {SHARD_TELEMETRY_MODES}, "
                f"got {self.telemetry!r}"
            )
        if self.telemetry_capacity <= 0:
            raise ValueError(
                f"telemetry_capacity must be positive, got "
                f"{self.telemetry_capacity!r}"
            )


def build_shard_workload(kind: str):
    """Construct the (deterministic) workload object for a shard."""
    if kind == "solr":
        from repro.workloads import SolrWorkload

        return SolrWorkload()
    if kind == "chaos":
        from repro.faults.harness import chaos_workload

        return chaos_workload()
    raise ValueError(f"unknown shard workload kind {kind!r}")


@dataclass
class ShardWorld:
    """A built shard: cluster, host bookkeeping, and per-epoch outboxes."""

    config: ShardConfig
    cluster: HeterogeneousCluster
    workload: object
    #: (request_id, attempt) -> (ticket, container, member).  The attempt
    #: is part of the key so a late reply from a crashed machine's copy of
    #: a request can never match a re-injected retry of the same request
    #: -- with a bare request_id key that collision is shard-dependent
    #: (the retry may or may not land in the late reply's shard).
    inflight: dict[tuple, tuple] = field(default_factory=dict)
    completions: list[tuple] = field(default_factory=list)
    failovers: list[tuple] = field(default_factory=list)
    late_replies: int = 0
    completed_per_machine: dict[str, int] = field(default_factory=dict)
    energy_per_machine: dict[str, float] = field(default_factory=dict)
    #: One shared handle per shard ("disabled"/"on" modes); tracks are
    #: machine-scoped via ``telemetry_node``, so sharing one tracer ring
    #: never mixes machines' event order within a track.
    telemetry: object = None
    drain: object = None
    epochs_run: int = 0

    @classmethod
    def build(cls, config: ShardConfig, calibrations: dict) -> "ShardWorld":
        """Assemble the shard's machines, servers, and reply plumbing."""
        from repro.hardware.specs import spec_by_name

        telemetry = None
        if config.telemetry != "off":
            telemetry = Telemetry(
                enabled=config.telemetry == "on",
                capacity=config.telemetry_capacity,
            )
        cluster = HeterogeneousCluster()
        for name, spec_name in config.machines:
            facility_kwargs = None
            if telemetry is not None:
                facility_kwargs = {
                    "telemetry": telemetry, "telemetry_node": name
                }
            cluster.add_machine(
                spec_by_name(spec_name),
                calibrations[spec_name],
                name=name,
                facility_kwargs=facility_kwargs,
            )
        workload = build_shard_workload(config.workload)
        cluster.build_workload(workload)
        world = cls(config=config, cluster=cluster, workload=workload)
        world.telemetry = telemetry
        if config.telemetry == "on":
            world.drain = FrameDrain(telemetry)
        for member in cluster.machines:
            world.completed_per_machine[member.name] = 0
            world.energy_per_machine[member.name] = 0.0
            for server in member.servers.values():
                server.client_side.on_message = world._make_reply_handler(
                    member
                )
            member.on_crash(world._handle_crash)
        return world

    # -- epoch protocol -------------------------------------------------
    def deliver(self, directives: list[tuple]) -> None:
        """Schedule one barrier's directives into the upcoming epoch.

        The coordinator sends directives pre-sorted by (time, machine,
        request id); scheduling order therefore never depends on shard
        composition, and neither does anything else -- simultaneous events
        on different machines cannot interact.
        """
        sim = self.cluster.simulator
        for directive in directives:
            kind, body = validate_directive(directive)
            if kind == DIRECTIVE_INJECT:
                ticket = DispatchTicket.from_wire(body)
                sim.schedule_at(
                    ticket.arrival, self._inject, ticket, label="shard-inject"
                )
            elif kind == DIRECTIVE_CRASH:
                machine, time = body
                member = self.cluster.by_name(machine)
                sim.schedule_at(time, member.crash, label="shard-crash")
            elif kind == DIRECTIVE_RECOVER:
                machine, time = body
                member = self.cluster.by_name(machine)
                sim.schedule_at(time, member.recover, label="shard-recover")
            else:
                raise ValueError(f"unknown directive kind {kind!r}")

    def run_epoch(self, end: float) -> tuple[list[tuple], list[tuple]]:
        """Advance to the barrier; returns sorted (completions, failovers).

        Outboxes are returned as wire tuples sorted under each record's
        canonical key and cleared for the next epoch.
        """
        self.cluster.simulator.run_epoch(end)
        self.epochs_run += 1
        completions = sorted(self.completions)
        failovers = sorted(self.failovers)
        self.completions = []
        self.failovers = []
        return completions, failovers

    def drain_frame(self):
        """This barrier's telemetry frame wire tuple (``None`` unless "on").

        Call once per barrier, after :meth:`run_epoch`: the drain empties
        the tracer ring and snapshots the registry, so the frame carries
        exactly this epoch's deltas.
        """
        if self.drain is None:
            return None
        return self.drain.drain(
            self.config.shard_id, self.epochs_run - 1
        ).to_wire()

    # -- host plumbing --------------------------------------------------
    def _inject(self, ticket: DispatchTicket) -> None:
        member = self.cluster.by_name(ticket.machine)
        if not member.alive:
            # Crashed after the coordinator routed to it (same barrier):
            # bounce the ticket back as an immediate failover.
            self.failovers.append(
                FailoverRecord(
                    time=self.cluster.simulator.now,
                    machine=member.name,
                    request_id=ticket.request_id,
                    ticket_wire=ticket.to_wire(),
                ).to_wire()
            )
            return
        spec = ticket.spec()
        container = member.facility.create_request_container(
            label=f"{ticket.workload}:{ticket.rtype}",
            meta={
                "rtype": ticket.rtype,
                "workload": ticket.workload,
                "params": dict(spec.params),
            },
        )
        member.facility.registry.incref(container.id)
        key = (ticket.request_id, ticket.attempt)
        self.inflight[key] = (ticket, container, member)
        member.servers[ticket.workload].inject(
            Message(
                nbytes=self.workload.request_bytes(),
                payload=(key, spec),
                tag=ContextTag(container_id=container.id),
            )
        )

    def _make_reply_handler(self, member: ClusterMachine):
        def on_reply(message: Message) -> None:
            (key, _spec), _result = message.payload
            entry = self.inflight.pop(key, None)
            if entry is None:
                # Crashed while serving, failed over, served anyway: the
                # late reply is counted, never double-completed.
                self.late_replies += 1
                return
            ticket, container, served_by = entry
            now = self.cluster.simulator.now
            energy = container.total_energy(served_by.facility.primary)
            served_by.facility.registry.decref(container.id)
            served_by.facility.complete_request(container)
            self.completed_per_machine[served_by.name] += 1
            self.energy_per_machine[served_by.name] += energy
            self.completions.append(
                CompletionRecord(
                    completion=now,
                    machine=served_by.name,
                    request_id=key[0],
                    rtype=ticket.rtype,
                    arrival=ticket.arrival,
                    energy_joules=energy,
                    response_time=now - ticket.arrival,
                ).to_wire()
            )

        return on_reply

    def _handle_crash(self, member: ClusterMachine) -> None:
        """Strand this machine's in-flight work into failover records."""
        now = self.cluster.simulator.now
        stranded = sorted(
            key
            for key, entry in self.inflight.items()
            if entry[2] is member
        )
        for key in stranded:
            ticket, container, served_by = self.inflight.pop(key)
            served_by.facility.registry.decref(container.id)
            served_by.facility.complete_request(container)
            self.failovers.append(
                FailoverRecord(
                    time=now,
                    machine=served_by.name,
                    request_id=key[0],
                    ticket_wire=ticket.to_wire(),
                ).to_wire()
            )

    # -- restart verification -------------------------------------------
    def state_summary(self) -> dict:
        """Compact plain-data view of shard progress (replay-verifiable).

        A shard rebuilt from its config and replayed from its directive
        history must reproduce this summary bit-for-bit; the pool verifies
        the digest after every worker restart.
        """
        summary = {
            "v": 1,
            "shard": self.config.shard_id,
            "now": self.cluster.simulator.now,
            "events": self.cluster.simulator.events_processed,
            "inflight": sorted(self.inflight),
            "late_replies": self.late_replies,
            "completed": dict(sorted(self.completed_per_machine.items())),
            "energy": dict(sorted(self.energy_per_machine.items())),
        }
        if self.drain is not None:
            # Chain digest over every frame shipped: replay verification
            # then proves a revived worker regenerated identical frames.
            summary["telemetry"] = self.drain.summary()
        return summary

    def state_digest(self) -> str:
        """SHA-256 of :meth:`state_summary` (the cheap per-epoch check)."""
        return payload_digest(self.state_summary())

    # -- end-of-run reporting -------------------------------------------
    def final_payload(self) -> dict:
        """Everything the coordinator folds into the run fingerprints."""
        machines = {}
        for member in self.cluster.machines:
            member.facility.flush()
            member.machine.checkpoint()
            primary = member.facility.primary
            containers = sorted(
                member.facility.registry.all_containers(),
                key=lambda c: c.id,
            )
            machines[member.name] = {
                "completed": self.completed_per_machine[member.name],
                "attributed_joules": self.energy_per_machine[member.name],
                "measured_joules": float(
                    member.machine.integrator.active_joules
                ),
                "crash_count": member.crash_count,
                "alive": member.alive,
                "batch_lines": [
                    f"{c.id}:{c.label}:{c.total_energy(primary)!r}:"
                    f"{c.stats.sample_count}"
                    for c in containers
                ],
            }
        return {
            "shard": self.config.shard_id,
            "late_replies": self.late_replies,
            "inflight": sorted(self.inflight),
            "machines": machines,
        }
