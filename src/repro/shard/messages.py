"""Cross-shard message records: plain data with a stable total order.

Everything that crosses a shard boundary -- dispatch tickets going in,
completion and failover records coming out, crash/recover directives --
is rendered as *plain data* (the checkpoint layer's discipline: tuples,
dicts, strings, numbers) before it touches a pipe.  Each record type
defines one canonical sort key, and :func:`merge_records` merges per-shard
outboxes under that key, so the coordinator consumes an identical stream
for any shard count: the stable total order that makes an N-shard run
bit-identical to the single-process run.

Sort keys break ties beyond the timestamp with ``(machine, request_id)``;
two distinct records can never compare equal, so the merged order is a
genuine total order, not an implementation accident of the merge.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.server.dispatch import DispatchTicket

# Telemetry frames ride the same wire as completions/failovers; the class
# lives in repro.telemetry.aggregate (telemetry never imports shard) and
# is re-exported here so the wire protocol has one home.
from repro.telemetry.aggregate import FrameChecksumError, TelemetryFrame

__all__ = [
    "DIRECTIVE_INJECT",
    "DIRECTIVE_CRASH",
    "DIRECTIVE_RECOVER",
    "DIRECTIVE_KINDS",
    "validate_directive",
    "CompletionRecord",
    "FailoverRecord",
    "FrameChecksumError",
    "TelemetryFrame",
    "inject_directive",
    "crash_directive",
    "recover_directive",
    "merge_records",
]

#: Epoch directive kinds a shard accepts, in delivery order at one barrier.
DIRECTIVE_INJECT = "inject"
DIRECTIVE_CRASH = "crash"
DIRECTIVE_RECOVER = "recover"

#: Every legal directive kind (validation + the transport tests' oracle).
DIRECTIVE_KINDS = frozenset(
    (DIRECTIVE_INJECT, DIRECTIVE_CRASH, DIRECTIVE_RECOVER)
)


def validate_directive(directive: object) -> tuple:
    """Check one wire directive's shape; returns it or raises ValueError.

    Directive batches ride inside checksummed transport frames, so bit
    rot is caught before this point -- this guards against *protocol*
    bugs (a malformed batch built coordinator-side), which no checksum
    can catch.
    """
    if not isinstance(directive, tuple) or len(directive) != 2:
        raise ValueError(f"malformed directive {directive!r}")
    kind, _body = directive
    if kind not in DIRECTIVE_KINDS:
        raise ValueError(f"unknown directive kind {kind!r}")
    return directive


@dataclass(frozen=True)
class CompletionRecord:
    """One request served to completion on a shard-local machine."""

    completion: float
    machine: str
    request_id: int
    rtype: str
    arrival: float
    energy_joules: float
    response_time: float

    def sort_key(self) -> tuple:
        """Stable total-order key across all shards."""
        return (self.completion, self.machine, self.request_id)

    def to_wire(self) -> tuple:
        return (
            self.completion, self.machine, self.request_id, self.rtype,
            self.arrival, self.energy_joules, self.response_time,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "CompletionRecord":
        return cls(*wire)


@dataclass(frozen=True)
class FailoverRecord:
    """One in-flight request stranded by a machine crash, with its ticket.

    The partial energy stays attributed on the dead machine (the work
    really burned those joules); the ticket travels back to the
    coordinator for re-placement at the next barrier.
    """

    time: float
    machine: str
    request_id: int
    ticket_wire: tuple

    def sort_key(self) -> tuple:
        return (self.time, self.machine, self.request_id)

    def to_wire(self) -> tuple:
        return (self.time, self.machine, self.request_id, self.ticket_wire)

    @classmethod
    def from_wire(cls, wire: tuple) -> "FailoverRecord":
        return cls(*wire)

    def ticket(self) -> DispatchTicket:
        """The stranded request's dispatch ticket."""
        return DispatchTicket.from_wire(self.ticket_wire)


def inject_directive(ticket: DispatchTicket) -> tuple:
    """Epoch directive delivering one ticket to its machine's shard."""
    return (DIRECTIVE_INJECT, ticket.to_wire())


def crash_directive(machine: str, time: float) -> tuple:
    """Epoch directive crashing ``machine`` at an in-epoch time."""
    return (DIRECTIVE_CRASH, (machine, time))


def recover_directive(machine: str, time: float) -> tuple:
    """Epoch directive recovering ``machine`` at an in-epoch time."""
    return (DIRECTIVE_RECOVER, (machine, time))


def merge_records(per_shard: Sequence[Iterable[tuple]], record_cls):
    """Merge per-shard wire records into one totally-ordered list.

    Each shard's outbox is already sorted under ``record_cls.sort_key``;
    the k-way merge preserves that key globally.  The result is identical
    for any partitioning of machines into shards because the key never
    depends on shard identity.
    """
    decoded = [
        [record_cls.from_wire(wire) for wire in outbox]
        for outbox in per_shard
    ]
    return list(heapq.merge(*decoded, key=lambda record: record.sort_key()))
