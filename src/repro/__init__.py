"""Power Containers (ASPLOS 2013) -- a simulation-based reproduction.

Per-request power and energy accounting and control for multicore servers:
an event-driven multicore power model with shared-chip-power attribution,
measurement-aligned online recalibration, application-transparent request
tracking, fair per-request power capping, and heterogeneity-aware request
distribution -- implemented over a discrete-event simulated hardware/OS
substrate.

Package layout: :mod:`repro.sim` (event engine), :mod:`repro.hardware`
(machines/counters/meters), :mod:`repro.kernel` (simulated OS),
:mod:`repro.core` (the paper's facility), :mod:`repro.workloads`,
:mod:`repro.server`, :mod:`repro.analysis` (experiment drivers).

Run ``python -m repro list`` for ready-made experiments.
"""

__version__ = "1.0.0"
