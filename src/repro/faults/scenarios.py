"""The named chaos scenarios the ``repro chaos`` CLI runs.

Each scenario pairs a fault plan with the counters that prove the plan
fired and the guards engaged.  Fault windows are positioned as fractions of
the scenario duration, so ``--duration-scale`` stretches or compresses the
whole storyline; the ``expects`` thresholds are calibrated for scale 1.0
(shorter runs may legitimately under-shoot them).

Every scenario ends with a fault-free tail (no window extends past ~85% of
the run), so recovery -- not just survival -- is always part of what the
invariants certify.
"""

from __future__ import annotations

import numpy as np

from repro.faults.harness import ChaosWorld, Scenario, SingleMachineWorld
from repro.faults.injectors import MeterFaultProfile
from repro.faults.plan import FaultPlan


def _flapping_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    d = world.duration
    plan = FaultPlan()
    plan.meter_outage(0.125 * d, 0.125 * d)
    plan.meter_outage(0.42 * d, 0.15 * d)
    plan.meter_outage(0.71 * d, 0.125 * d)
    return plan


def _nan_burst_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    profile = MeterFaultProfile(nan_prob=0.5, negative_prob=0.2)
    return FaultPlan().meter_noise_window(
        0.25 * world.duration, 0.3 * world.duration, profile
    )


def _stuck_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    profile = MeterFaultProfile(stuck_prob=0.9, extra_delay_prob=0.3)
    return FaultPlan().meter_noise_window(
        0.2 * world.duration, 0.4 * world.duration, profile
    )


def _drop_dup_delay_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    profile = MeterFaultProfile(
        drop_prob=0.3, duplicate_prob=0.3, extra_delay_prob=0.3
    )
    return FaultPlan().meter_noise_window(
        0.2 * world.duration, 0.5 * world.duration, profile
    )


def _tag_loss_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    return FaultPlan().tag_loss_window(
        "listener",
        0.2 * world.duration,
        0.5 * world.duration,
        loss_prob=0.35,
        truncate_prob=0.2,
    )


def _stale_mailbox_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    d = world.duration
    plan = FaultPlan()
    plan.mailbox_freeze(1, 0.2 * d, 0.4 * d)
    plan.mailbox_freeze(3, 0.3 * d, 0.3 * d)
    return plan


def _cluster_crash_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    d = world.duration
    plan = FaultPlan()
    plan.machine_crash("sb1", 0.3 * d, 0.3 * d)
    plan.machine_crash("sb0", 0.7 * d, 0.15 * d)
    return plan


def _arrival_storm_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    # A 5x open-loop surge: the token buckets saturate, queues fill, and
    # low-priority arrivals are shed -- all before the fault-free tail
    # demonstrates the system draining back to normal admission.
    return FaultPlan().arrival_storm(0.2 * world.duration,
                                     0.45 * world.duration, multiplier=5.0)


def _cap_squeeze_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    d = world.duration
    plan = FaultPlan()
    # The utility halves the cluster's power budget mid-run; the brownout
    # ladder must walk up (condition -> shed -> reject) until measured
    # power fits, then back down as the squeeze lifts.
    plan.cap_squeeze(0.25 * d, 0.35 * d, fraction=0.45)
    # One machine's meter dies inside the squeeze window: the enforcer's
    # degraded-telemetry mode must drop to the conservative cap on top.
    plan.machine_meter_outage("sb0", 0.35 * d, 0.2 * d)
    return plan


def _storm_during_crash_plan(
    world: ChaosWorld, rng: np.random.Generator
) -> FaultPlan:
    d = world.duration
    plan = FaultPlan()
    # Half the cluster dies, then traffic triples while it is down: the
    # worst realistic day.  The surviving machine's admission control must
    # shed the overflow instead of melting, and recovery must re-admit.
    plan.machine_crash("sb1", 0.3 * d, 0.3 * d)
    plan.arrival_storm(0.35 * d, 0.3 * d, multiplier=3.0)
    return plan


def _kitchen_sink_plan(world: ChaosWorld, rng: np.random.Generator) -> FaultPlan:
    d = world.duration
    # One guaranteed outage plus a seeded random storm over every site the
    # single-machine world exposes.
    plan = FaultPlan().meter_outage(0.15 * d, 0.15 * d)
    n_cores = (
        world.machine.n_cores if isinstance(world, SingleMachineWorld) else 0
    )
    return plan.merge(
        FaultPlan.random(
            rng, d, endpoints=("listener",), n_cores=n_cores, max_windows=4
        )
    )


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="meter-flapping",
        description="Package meter dies and recovers three times; the "
        "watchdog falls back to last-good coefficients each outage and "
        "re-engages recalibration on recovery.",
        kind="single",
        duration=2.4,
        tolerance=0.30,
        build_plan=_flapping_plan,
        expects=(
            ("meter_outages", 3.0),
            ("meter_fallbacks", 2.0),
            ("meter_recoveries", 2.0),
        ),
    ),
    Scenario(
        name="meter-nan-burst",
        description="Half the readings in a window are NaN and a fifth are "
        "negative; ingestion filters discard them before they can poison a "
        "refit.",
        kind="single",
        duration=1.6,
        tolerance=0.25,
        build_plan=_nan_burst_plan,
        expects=(
            ("meter_corrupted", 5.0),
            ("rejected_meter_samples", 1.0),
        ),
    ),
    Scenario(
        name="meter-stuck",
        description="The meter repeats its previous reading (stuck register) "
        "and delivers late; the recalibration guard bounds the damage.",
        kind="single",
        duration=1.6,
        tolerance=0.30,
        build_plan=_stuck_plan,
        expects=(("meter_corrupted", 10.0),),
    ),
    Scenario(
        name="meter-drop-dup-delay",
        description="Readings are dropped, duplicated, and extra-delayed at "
        "random; the availability-watermark consumer must not double-count "
        "or stall.",
        kind="single",
        duration=1.6,
        tolerance=0.25,
        build_plan=_drop_dup_delay_plan,
        expects=(
            ("meter_dropped", 3.0),
            ("meter_duplicated", 3.0),
            ("meter_delayed", 3.0),
        ),
    ),
    Scenario(
        name="tag-loss",
        description="A third of inbound request segments lose their in-band "
        "context tag; untagged work routes to the background container "
        "instead of mis-charging a stale binding.",
        kind="single",
        duration=1.6,
        tolerance=0.30,
        build_plan=_tag_loss_plan,
        expects=(
            ("listener_tags_lost", 3.0),
            ("untagged_segments", 3.0),
        ),
    ),
    Scenario(
        name="stale-mailbox",
        description="Two cores' sample mailboxes freeze, so sibling "
        "chip-share reads see arbitrarily stale utilization (the Section "
        "3.1 hazard at its worst).",
        kind="single",
        duration=1.6,
        tolerance=0.30,
        build_plan=_stale_mailbox_plan,
        expects=(("mailbox_freezes", 2.0),),
    ),
    Scenario(
        name="cluster-crash",
        description="Each cluster machine crashes once (overlapping the "
        "other's healthy window); the dispatcher fails over in-flight "
        "requests and re-admits recovered machines.",
        kind="cluster",
        duration=1.6,
        tolerance=0.35,
        build_plan=_cluster_crash_plan,
        expects=(
            ("machine_crashes", 2.0),
            ("retries", 1.0),
        ),
    ),
    Scenario(
        name="arrival-storm",
        description="Open-loop arrivals surge to 5x capacity planning; "
        "token buckets and bounded queues shed the overflow "
        "deterministically, every arrival reaching exactly one of "
        "completed/shed/rejected.",
        kind="overload",
        duration=1.6,
        tolerance=0.35,
        build_plan=_arrival_storm_plan,
        expects=(
            ("arrival_surges", 1.0),
            ("overload_rejected", 10.0),
            ("overload_queued_total", 5.0),
        ),
    ),
    Scenario(
        name="cap-squeeze",
        description="The cluster power cap is halved mid-run and one "
        "machine's meter dies inside the window; the brownout ladder "
        "escalates (condition -> shed -> reject) under the degraded-"
        "telemetry conservative cap, then steps back down with hysteresis.",
        kind="overload",
        duration=1.6,
        tolerance=0.35,
        build_plan=_cap_squeeze_plan,
        expects=(
            ("cap_squeezes", 1.0),
            ("powercap_escalations", 1.0),
            ("powercap_deescalations", 1.0),
            ("powercap_degraded_intervals", 1.0),
        ),
    ),
    Scenario(
        name="storm-during-crash",
        description="Half the cluster crashes and traffic triples while it "
        "is down; the survivor's admission control sheds the overflow, "
        "in-flight requests fail over, and recovery re-admits the machine.",
        kind="overload",
        duration=1.6,
        tolerance=0.35,
        build_plan=_storm_during_crash_plan,
        expects=(
            ("machine_crashes", 1.0),
            ("arrival_surges", 1.0),
            ("overload_rejected", 5.0),
        ),
    ),
    Scenario(
        name="kitchen-sink",
        description="A guaranteed meter outage plus a seeded random storm "
        "across every fault site at once.",
        kind="single",
        duration=2.0,
        tolerance=0.40,
        build_plan=_kitchen_sink_plan,
        expects=(("meter_outages", 1.0),),
    ),
)


def scenario_by_name(name: str) -> Scenario:
    """Look up one scenario; raises ``KeyError`` with the catalog listed."""
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in SCENARIOS)
    raise KeyError(f"unknown chaos scenario {name!r} (known: {known})")
