"""Chaos harness: build a world, run a fault plan, check invariants.

A chaos run assembles a small serving world (one machine with a package
meter and a pipelined synthetic workload, or a two-machine cluster behind a
dispatcher), applies a :class:`~repro.faults.plan.FaultPlan`, drives load
for the scenario's duration, and then audits the attribution stack:

* every model-trace power estimate is finite,
* every live model's coefficients are finite,
* no container carries negative energy,
* total attributed energy matches ground-truth measured energy within the
  scenario's tolerance (the paper's Fig. 8 energy-sum validation, under
  fire), and
* the scenario's expected self-healing counters actually engaged -- a run
  that "passes" because the faults never fired is a broken scenario, not a
  robust system.

Everything is seeded through :class:`repro.sim.rng.RngHub`, so one seed
fixes the workload arrivals, the fault draws, and therefore the full
report; :meth:`ChaosReport.fingerprint` renders it bit-identically for the
determinism gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

import numpy as np

from repro.core.calibration import CalibrationResult, calibrate_machine
from repro.core.facility import PowerContainerFacility
from repro.core.powercap import PowerCapEnforcer
from repro.faults.injectors import (
    ArrivalSurgeInjector,
    ClusterFaultInjector,
    MailboxFaultInjector,
    MeterFaultInjector,
    PowerCapInjector,
    TagFaultInjector,
)
from repro.faults.plan import FaultPlan, FaultTargets
from repro.hardware.events import RateProfile
from repro.hardware.meters import PackageMeter
from repro.hardware.specs import SANDYBRIDGE, build_machine
from repro.kernel import Kernel
from repro.server.cluster import HeterogeneousCluster
from repro.server.dispatch import Dispatcher, SimpleLoadBalancePolicy
from repro.server.overload import OverloadConfig, OverloadProtector
from repro.sim.engine import Simulator
from repro.sim.rng import RngHub
from repro.workloads.base import OpenLoopDriver
from repro.workloads.synthetic import StageSpec, SyntheticWorkload

#: Per-spec calibration cache: chaos runs many scenarios on identical
#: machine models and calibration is by far the most expensive step.
_CALIBRATIONS: dict[str, CalibrationResult] = {}

_PARSE = RateProfile(name="chaos-parse", ipc=1.6, cache_per_cycle=0.004,
                     mem_per_cycle=0.001, hidden_watts=0.0)
_DB = RateProfile(name="chaos-db", ipc=0.8, cache_per_cycle=0.02,
                  mem_per_cycle=0.008, hidden_watts=2.0)
_RENDER = RateProfile(name="chaos-render", ipc=1.2, cache_per_cycle=0.01,
                      mem_per_cycle=0.004, hidden_watts=1.0)


def chaos_calibration(spec=SANDYBRIDGE) -> CalibrationResult:
    """Calibrate one machine model (cached per spec for the process)."""
    cached = _CALIBRATIONS.get(spec.name)
    if cached is None:
        cached = _CALIBRATIONS[spec.name] = calibrate_machine(spec)
    return cached


def chaos_workload() -> SyntheticWorkload:
    """The pipelined request used by every chaos scenario.

    One inline parse, one sub-service stage over a persistent tagged
    socket (so per-segment tagging is genuinely exercised), one inline
    render -- a compact Fig. 4-style topology.
    """
    return SyntheticWorkload(
        name="chaos",
        stages=[
            StageSpec("parse", cycles=3e6, profile=_PARSE),
            StageSpec("db", cycles=8e6, profile=_DB, kind="service",
                      io_bytes=4096.0),
            StageSpec("render", cycles=6e6, profile=_RENDER),
        ],
        demand_jitter=0.15,
        n_workers=6,
    )


@dataclass
class SingleMachineWorld:
    """One metered machine serving the chaos workload under open-loop load."""

    simulator: Simulator
    machine: object
    kernel: Kernel
    facility: PowerContainerFacility
    workload: SyntheticWorkload
    server: object
    driver: OpenLoopDriver
    targets: FaultTargets
    hub: RngHub
    duration: float
    #: Optional shared telemetry handle (None = uninstrumented run).
    telemetry: object = None

    def start(self) -> None:
        """Begin request arrivals."""
        self.driver.start(self.duration)

    def measured_joules(self) -> float:
        """Ground-truth active energy over the whole run."""
        self.machine.checkpoint()
        return float(self.machine.integrator.active_joules)

    def attributed_joules(self) -> float:
        """Model-attributed energy summed over every container."""
        return float(self.facility.registry.total_energy(self.facility.primary))


@dataclass
class ClusterWorld:
    """Two machines behind a retrying dispatcher."""

    cluster: HeterogeneousCluster
    dispatcher: Dispatcher
    workload: SyntheticWorkload
    targets: FaultTargets
    hub: RngHub
    duration: float
    #: Optional shared telemetry handle (None = uninstrumented run).
    telemetry: object = None

    @property
    def simulator(self) -> Simulator:
        """The shared cluster simulator."""
        return self.cluster.simulator

    def start(self) -> None:
        """Begin request arrivals at the dispatcher."""
        self.dispatcher.start(self.duration)

    def measured_joules(self) -> float:
        """Ground-truth active energy summed over all machines."""
        total = 0.0
        for member in self.cluster.machines:
            member.machine.checkpoint()
            total += member.machine.integrator.active_joules
        return float(total)

    def attributed_joules(self) -> float:
        """Attributed energy summed over all machines' containers."""
        return float(
            sum(
                member.facility.registry.total_energy(member.facility.primary)
                for member in self.cluster.machines
            )
        )


@dataclass
class OverloadWorld(ClusterWorld):
    """A metered cluster with overload protection and a power-cap enforcer.

    Extends the plain cluster world with per-machine package meters (so the
    facility watchdogs -- and therefore the enforcer's degraded-telemetry
    mode -- are live), an :class:`~repro.server.overload.OverloadProtector`
    on the dispatcher, and a :class:`~repro.core.powercap.PowerCapEnforcer`
    driving the brownout ladder.
    """

    protector: OverloadProtector = None  # type: ignore[assignment]
    enforcer: PowerCapEnforcer = None  # type: ignore[assignment]

    def start(self) -> None:
        """Begin the cap control loop and request arrivals."""
        self.enforcer.start()
        self.dispatcher.start(self.duration)


ChaosWorld = Union[SingleMachineWorld, ClusterWorld]


def build_single_world(
    seed: int, duration: float, load_fraction: float = 0.45, telemetry=None
) -> SingleMachineWorld:
    """Assemble the single-machine chaos world with all injectors bound."""
    calibration = chaos_calibration()
    hub = RngHub(seed)
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(
        kernel,
        calibration,
        meter=PackageMeter(machine, sim, period=1e-3, delay=1e-3),
        meter_idle_watts=calibration.package_idle_watts,
        trace_period=1e-3,
        recalib_interval=0.1,
        max_delay_seconds=0.01,
        route_untagged_to_background=True,
        telemetry=telemetry,
    )
    facility.start_tracing()
    workload = chaos_workload()
    server = workload.build_server(kernel, facility)
    driver = OpenLoopDriver(
        kernel, facility, workload, server,
        load_fraction=load_fraction, rng=hub.stream("chaos-arrivals"),
    )
    targets = FaultTargets(
        meter=MeterFaultInjector(facility.meter, hub.stream("chaos-meter")),
        tags={
            "listener": TagFaultInjector(
                server.listener,
                hub.stream("chaos-tags"),
                # The tag carried the in-flight container reference; release
                # it or the container never closes (a real leak this hook
                # exists to model -- and the facility must survive).
                on_loss=facility.registry.decref,
            )
        },
        mailbox=MailboxFaultInjector(machine),
    )
    return SingleMachineWorld(
        simulator=sim, machine=machine, kernel=kernel, facility=facility,
        workload=workload, server=server, driver=driver, targets=targets,
        hub=hub, duration=duration, telemetry=telemetry,
    )


def build_cluster_world(
    seed: int, duration: float, load_fraction: float = 0.35, telemetry=None
) -> ClusterWorld:
    """Assemble the two-machine cluster chaos world."""
    calibration = chaos_calibration()
    hub = RngHub(seed)
    cluster = HeterogeneousCluster()
    for name in ("sb0", "sb1"):
        cluster.add_machine(
            SANDYBRIDGE,
            calibration,
            name=name,
            facility_kwargs=dict(telemetry=telemetry, telemetry_node=name),
        )
    workload = chaos_workload()
    cluster.build_workload(workload)
    demand = workload.mean_demand_seconds("sandybridge")
    total_cores = sum(m.machine.n_cores for m in cluster.machines)
    dispatcher = Dispatcher(
        cluster,
        [(workload, 1.0)],
        SimpleLoadBalancePolicy(),
        request_rate=load_fraction * total_cores / demand,
        rng=hub.stream("chaos-arrivals"),
        telemetry=telemetry,
    )
    targets = FaultTargets(
        cluster=ClusterFaultInjector(
            {m.name: m for m in cluster.machines}
        )
    )
    return ClusterWorld(
        cluster=cluster, dispatcher=dispatcher, workload=workload,
        targets=targets, hub=hub, duration=duration, telemetry=telemetry,
    )


def build_overload_world(
    seed: int,
    duration: float,
    load_fraction: float = 0.35,
    cap_watts: float = 95.0,
    telemetry=None,
) -> OverloadWorld:
    """Assemble the overload/brownout chaos world.

    Two metered machines behind an overload-protected dispatcher, with a
    cluster power-cap enforcer whose default ``cap_watts`` leaves headroom
    at the base load (the brownout ladder stays at full-speed until a storm
    or a squeeze pushes the cluster over).
    """
    calibration = chaos_calibration()
    hub = RngHub(seed)
    cluster = HeterogeneousCluster()
    for name in ("sb0", "sb1"):
        cluster.add_machine(
            SANDYBRIDGE,
            calibration,
            name=name,
            facility_kwargs=dict(
                meter_idle_watts=calibration.package_idle_watts,
                trace_period=1e-3,
                recalib_interval=0.1,
                max_delay_seconds=0.01,
                route_untagged_to_background=True,
                telemetry=telemetry,
                telemetry_node=name,
            ),
            meter_factory=lambda machine, sim: PackageMeter(
                machine, sim, period=1e-3, delay=1e-3
            ),
        )
    workload = chaos_workload()
    cluster.build_workload(workload)
    demand = workload.mean_demand_seconds("sandybridge")
    total_cores = sum(m.machine.n_cores for m in cluster.machines)
    request_rate = load_fraction * total_cores / demand
    protector = OverloadProtector(
        OverloadConfig(
            max_inflight=6,
            queue_depth=8,
            # Per-machine bucket: the full base cluster rate, so a 2x storm
            # saturates both machines' buckets while the base load never
            # touches them.
            bucket_rate=request_rate,
            bucket_capacity=max(8.0, request_rate * 0.02),
            deadline_budget=0.08,
        ),
        priority_rng=hub.stream("chaos-priorities"),
    )
    dispatcher = Dispatcher(
        cluster,
        [(workload, 1.0)],
        SimpleLoadBalancePolicy(),
        request_rate=request_rate,
        rng=hub.stream("chaos-arrivals"),
        overload=protector,
        telemetry=telemetry,
    )
    enforcer = PowerCapEnforcer(
        cluster, cap_watts=cap_watts, protector=protector, interval=0.02,
        telemetry=telemetry,
    )
    for member in cluster.machines:
        member.facility.start_tracing()
    targets = FaultTargets(
        cluster=ClusterFaultInjector({m.name: m for m in cluster.machines}),
        meters={
            member.name: MeterFaultInjector(
                member.facility.meter, hub.stream(f"chaos-meter-{member.name}")
            )
            for member in cluster.machines
        },
        arrivals=ArrivalSurgeInjector(dispatcher),
        powercap=PowerCapInjector(enforcer),
    )
    return OverloadWorld(
        cluster=cluster, dispatcher=dispatcher, workload=workload,
        targets=targets, hub=hub, duration=duration, telemetry=telemetry,
        protector=protector, enforcer=enforcer,
    )


@dataclass(frozen=True)
class Scenario:
    """A named chaos scenario: a world kind, a fault plan, expectations.

    ``build_plan(world, rng)`` returns the scenario's fault plan (built
    against ``world.duration`` so ``--duration-scale`` scales the fault
    windows along with the run).  ``expects`` lists counters that must
    reach a minimum value after the run -- proof the faults actually fired
    and the corresponding guard actually engaged.
    """

    name: str
    description: str
    kind: str  # "single" | "cluster" | "overload"
    duration: float
    tolerance: float
    build_plan: Callable[[ChaosWorld, np.random.Generator], FaultPlan]
    expects: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("single", "cluster", "overload"):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if self.duration <= 0 or self.tolerance <= 0:
            raise ValueError("duration and tolerance must be positive")


@dataclass
class ChaosReport:
    """Everything one scenario run produced, renderable bit-identically."""

    scenario: str
    seed: int
    duration: float
    stats: dict[str, float] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def fingerprint(self) -> str:
        """Canonical rendering: identical runs produce identical strings.

        Floats are rendered with ``repr`` (shortest round-trip form), so
        any bitwise divergence between two same-seed runs shows up.
        """
        lines = [f"scenario={self.scenario} seed={self.seed} "
                 f"duration={self.duration!r}"]
        for key in sorted(self.stats):
            lines.append(f"{key}={self.stats[key]!r}")
        for violation in self.violations:
            lines.append(f"VIOLATION {violation}")
        return "\n".join(lines)


def _check_finite_trace(facility: PowerContainerFacility, violations: list[str]) -> None:
    _times, watts = facility.model_trace_series()
    if len(watts) and not np.isfinite(watts).all():
        bad = int(np.count_nonzero(~np.isfinite(watts)))
        violations.append(f"{bad} non-finite model-trace watts")


def _check_models(facility: PowerContainerFacility, violations: list[str]) -> None:
    for name, model in sorted(facility.models.items()):
        if not np.isfinite(model.coefficients).all():
            violations.append(f"model {name!r} has non-finite coefficients")


def _check_containers(
    facility: PowerContainerFacility, violations: list[str]
) -> None:
    primary = facility.primary
    for container in facility.registry.all_containers():
        energy = container.total_energy(primary)
        if not np.isfinite(energy):
            violations.append(
                f"container {container.id} ({container.label}) has "
                f"non-finite energy"
            )
        elif energy < -1e-6:
            violations.append(
                f"container {container.id} ({container.label}) has "
                f"negative energy {energy:.3g} J"
            )


def _check_overload(world: "OverloadWorld", violations: list[str]) -> None:
    """Audit the overload/brownout contract after a run.

    * **Exact accounting**: every arrival is in exactly one terminal or
      pending state (``arrivals == completed + shed + rejected + pending``).
      A nonzero gap means a request was silently dropped or double-counted.
    * **Cap convergence**: the brownout ladder has one rung per control
      interval, so measured power may exceed the effective cap for at most
      ``len(BROWNOUT_LADDER) - 1`` consecutive intervals before the ladder
      has escalated as far as it can; any longer streak means capping
      failed to bite.
    """
    from repro.core.powercap import BROWNOUT_LADDER

    gap = world.protector.accounting_gap()
    if gap != 0:
        violations.append(
            f"overload accounting broken: {gap:+d} arrivals unaccounted "
            f"(arrivals {world.protector.arrivals}, completed "
            f"{world.protector.completed}, shed {world.protector.shed}, "
            f"rejected {world.protector.rejected}, pending "
            f"{world.protector.pending()})"
        )
    max_streak = len(BROWNOUT_LADDER) - 1
    if world.enforcer.max_consecutive_over > max_streak:
        violations.append(
            f"power cap never converged: measured power exceeded the "
            f"effective cap for {world.enforcer.max_consecutive_over} "
            f"consecutive control intervals (ladder needs at most "
            f"{max_streak})"
        )


def _check_conservation(
    attributed: float, measured: float, tolerance: float, violations: list[str]
) -> float:
    if measured <= 0.0:
        violations.append("measured active energy is zero: nothing ran")
        return float("nan")
    error = abs(attributed - measured) / measured
    if not np.isfinite(error) or error > tolerance:
        violations.append(
            f"energy not conserved: attributed {attributed:.3f} J vs "
            f"measured {measured:.3f} J (error {error:.1%} > "
            f"tolerance {tolerance:.0%})"
        )
    return error


@dataclass
class LiveScenarioRun:
    """A chaos world that is built, faulted, and started -- but not yet run.

    :func:`prepare_scenario` stops just before the clock advances, so the
    checkpoint runner can schedule auto-checkpoint ticks on
    ``world.simulator`` first; :func:`finalize_scenario` audits and
    packages the report exactly as the one-shot path always did.
    """

    scenario: Scenario
    seed: int
    duration: float
    world: ChaosWorld
    plan: FaultPlan
    telemetry: object = None


def prepare_scenario(
    scenario: Scenario, seed: int, duration_scale: float = 1.0, telemetry=None
) -> LiveScenarioRun:
    """Build the scenario's world, apply its plan, and start arrivals."""
    if duration_scale <= 0:
        raise ValueError("duration scale must be positive")
    duration = scenario.duration * duration_scale
    if scenario.kind == "single":
        world: ChaosWorld = build_single_world(
            seed, duration, telemetry=telemetry
        )
    elif scenario.kind == "overload":
        world = build_overload_world(seed, duration, telemetry=telemetry)
    else:
        world = build_cluster_world(seed, duration, telemetry=telemetry)
    plan = scenario.build_plan(world, world.hub.stream("chaos-plan"))
    plan.apply(world.simulator, world.targets, telemetry=telemetry)
    world.start()
    return LiveScenarioRun(
        scenario=scenario, seed=seed, duration=duration, world=world,
        plan=plan, telemetry=telemetry,
    )


def finalize_scenario(live: LiveScenarioRun) -> ChaosReport:
    """Audit the invariants of a fully-run scenario world."""
    scenario, seed, duration = live.scenario, live.seed, live.duration
    world, telemetry = live.world, live.telemetry

    report = ChaosReport(scenario=scenario.name, seed=seed, duration=duration)
    violations = report.violations
    stats = report.stats
    stats.update(world.targets.export_stats())

    if isinstance(world, SingleMachineWorld):
        world.facility.flush()
        _check_finite_trace(world.facility, violations)
        _check_models(world.facility, violations)
        _check_containers(world.facility, violations)
        stats.update(world.facility.health_stats())
        stats["completed"] = float(world.driver.completed)
    else:
        for member in world.cluster.machines:
            member.facility.flush()
            _check_models(member.facility, violations)
            _check_containers(member.facility, violations)
            if isinstance(world, OverloadWorld):
                _check_finite_trace(member.facility, violations)
            for key, value in member.facility.health_stats().items():
                stats[f"{member.name}_{key}"] = value
        stats.update(world.dispatcher.health_stats())
        if isinstance(world, OverloadWorld):
            stats.update(world.enforcer.health_stats())
            _check_overload(world, violations)

    attributed = world.attributed_joules()
    measured = world.measured_joules()
    stats["attributed_joules"] = attributed
    stats["measured_joules"] = measured
    stats["relative_error"] = _check_conservation(
        attributed, measured, scenario.tolerance, violations
    )
    if stats["completed"] <= 0:
        violations.append("no requests completed: the world never served")

    for key, minimum in scenario.expects:
        observed = stats.get(key)
        if observed is None:
            violations.append(f"expected counter {key!r} missing from stats")
        elif observed < minimum:
            violations.append(
                f"expected {key} >= {minimum:g}, observed {observed:g} "
                f"(the fault or guard never engaged)"
            )

    if telemetry is not None and telemetry.enabled:
        if isinstance(world, SingleMachineWorld):
            world.facility.publish_metrics(telemetry.registry)
        else:
            for member in world.cluster.machines:
                member.facility.publish_metrics(telemetry.registry)
            world.dispatcher.publish_metrics(telemetry.registry)
            if isinstance(world, OverloadWorld):
                world.enforcer.publish_metrics(telemetry.registry)
    return report


def run_scenario(
    scenario: Scenario, seed: int, duration_scale: float = 1.0, telemetry=None
) -> ChaosReport:
    """Run one scenario end to end and audit the invariants.

    An optional :class:`~repro.telemetry.Telemetry` handle threads through
    every component (facilities, dispatcher, overload protector, power-cap
    enforcer, fault plan); after the run each component's counters are
    published into its metrics registry.  ``None`` runs bit-identically to
    the uninstrumented harness.

    Composed from :func:`prepare_scenario` + :func:`finalize_scenario`
    with the clock driven in between -- the decomposition the checkpoint
    runner uses to interleave auto-checkpoint ticks.
    """
    live = prepare_scenario(
        scenario, seed, duration_scale=duration_scale, telemetry=telemetry
    )
    live.world.simulator.run_until(live.duration)
    return finalize_scenario(live)
