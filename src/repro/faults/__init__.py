"""Deterministic fault injection and chaos scenarios.

This package stress-tests the attribution stack the way operators stress
production systems: by breaking things on purpose, reproducibly.

* :mod:`~repro.faults.injectors` -- seeded injectors that attach to the
  dedicated fault hooks on meters (:attr:`fault_hook`), socket endpoints
  (:attr:`tag_fault`), per-core sample mailboxes (:attr:`frozen`), and
  cluster machines (:meth:`crash`/:meth:`recover`);
* :mod:`~repro.faults.plan` -- :class:`FaultPlan`, a composable schedule of
  fault events applied on the simulated clock;
* :mod:`~repro.faults.harness` -- world builders, invariant checks, and the
  bit-identically-renderable :class:`ChaosReport`;
* :mod:`~repro.faults.scenarios` -- the named scenarios ``repro chaos``
  runs.

All randomness flows through :class:`repro.sim.rng.RngHub` streams, so one
seed fixes the workload, the faults, and the report.
"""

from repro.faults.injectors import (
    ArrivalSurgeInjector,
    ClusterFaultInjector,
    MailboxFaultInjector,
    MeterFaultInjector,
    MeterFaultProfile,
    PowerCapInjector,
    TagFaultInjector,
    schedule_meter_outage,
)
from repro.faults.plan import FaultEvent, FaultPlan, FaultTargets
from repro.faults.harness import (
    ChaosReport,
    ChaosWorld,
    ClusterWorld,
    LiveScenarioRun,
    OverloadWorld,
    Scenario,
    SingleMachineWorld,
    build_cluster_world,
    build_overload_world,
    build_single_world,
    chaos_calibration,
    chaos_workload,
    finalize_scenario,
    prepare_scenario,
    run_scenario,
)
from repro.faults.scenarios import SCENARIOS, scenario_by_name

__all__ = [
    "ArrivalSurgeInjector",
    "ClusterFaultInjector",
    "MailboxFaultInjector",
    "MeterFaultInjector",
    "MeterFaultProfile",
    "PowerCapInjector",
    "TagFaultInjector",
    "schedule_meter_outage",
    "FaultEvent",
    "FaultPlan",
    "FaultTargets",
    "ChaosReport",
    "ChaosWorld",
    "ClusterWorld",
    "OverloadWorld",
    "Scenario",
    "SingleMachineWorld",
    "build_cluster_world",
    "build_overload_world",
    "build_single_world",
    "chaos_calibration",
    "chaos_workload",
    "LiveScenarioRun",
    "prepare_scenario",
    "finalize_scenario",
    "run_scenario",
    "SCENARIOS",
    "scenario_by_name",
]
