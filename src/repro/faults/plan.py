"""Composable, sim-clock-driven fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent`\\ s -- "at
virtual time *t*, do *action* at *site*".  Plans are pure data until
:meth:`FaultPlan.apply` binds them to live injectors and schedules every
event on the simulator, so the same plan can be rendered, hashed, replayed
against a fresh world, or merged with another plan.  Random plans draw from
a caller-supplied :class:`numpy.random.Generator` (normally a
``repro.sim.rng`` stream), which makes chaos runs reproducible from a seed.

Sites and their actions:

``meter``
    ``kill`` / ``restore`` (outage window), ``profile`` (activate a
    :class:`~repro.faults.injectors.MeterFaultProfile`, passed in
    ``params["profile"]``), ``clear_profile``.
``tags:<endpoint>``
    ``activate`` (``params`` may carry ``loss_prob`` / ``truncate_prob``),
    ``deactivate``.
``mailbox``
    ``freeze`` / ``thaw`` of core ``params["core"]``.
``cluster``
    ``crash`` / ``recover`` of machine ``params["machine"]``.
``meter:<machine>``
    Per-machine meter faults in cluster worlds: same actions as ``meter``,
    resolved against ``targets.meters[machine]``.
``arrivals``
    ``surge`` (``params["multiplier"]``) / ``calm`` on the dispatcher's
    open-loop arrival rate (traffic storms).
``powercap``
    ``squeeze`` (``params["fraction"]``) / ``release`` on the cluster
    power-cap enforcer (utility brownouts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.faults.injectors import (
    ArrivalSurgeInjector,
    ClusterFaultInjector,
    MailboxFaultInjector,
    MeterFaultInjector,
    MeterFaultProfile,
    PowerCapInjector,
    TagFaultInjector,
)
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action: at ``at`` seconds, ``action`` on ``site``."""

    at: float
    site: str
    action: str
    params: tuple[tuple[str, object], ...] = ()

    def param(self, key: str, default: object = None) -> object:
        """Look up one parameter by name."""
        for name, value in self.params:
            if name == key:
                return value
        return default


def _params(**kwargs: object) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass
class FaultTargets:
    """The live injectors a plan's sites resolve against."""

    meter: Optional[MeterFaultInjector] = None
    tags: dict[str, TagFaultInjector] = field(default_factory=dict)
    mailbox: Optional[MailboxFaultInjector] = None
    cluster: Optional[ClusterFaultInjector] = None
    #: Per-machine meter injectors for cluster worlds (site ``meter:<name>``).
    meters: dict[str, MeterFaultInjector] = field(default_factory=dict)
    arrivals: Optional[ArrivalSurgeInjector] = None
    powercap: Optional[PowerCapInjector] = None

    def export_stats(self) -> dict[str, float]:
        """Merged injection counters from every bound injector."""
        stats: dict[str, float] = {}
        if self.meter is not None:
            stats.update(self.meter.export_stats())
        for name, injector in sorted(self.tags.items()):
            for key, value in injector.export_stats().items():
                stats[f"{name}_{key}"] = value
        if self.mailbox is not None:
            stats.update(self.mailbox.export_stats())
        if self.cluster is not None:
            stats.update(self.cluster.export_stats())
        for name, injector in sorted(self.meters.items()):
            for key, value in injector.export_stats().items():
                stats[f"{name}_{key}"] = value
        if self.arrivals is not None:
            stats.update(self.arrivals.export_stats())
        if self.powercap is not None:
            stats.update(self.powercap.export_stats())
        return stats

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        """Every bound injector's state, keyed by site name."""
        return {
            "v": 1,
            "meter": (
                self.meter.snapshot_state() if self.meter is not None else None
            ),
            "tags": {
                name: injector.snapshot_state()
                for name, injector in sorted(self.tags.items())
            },
            "mailbox": (
                self.mailbox.snapshot_state()
                if self.mailbox is not None
                else None
            ),
            "cluster": (
                self.cluster.snapshot_state()
                if self.cluster is not None
                else None
            ),
            "meters": {
                name: injector.snapshot_state()
                for name, injector in sorted(self.meters.items())
            },
            "arrivals": (
                self.arrivals.snapshot_state()
                if self.arrivals is not None
                else None
            ),
            "powercap": (
                self.powercap.snapshot_state()
                if self.powercap is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown FaultTargets snapshot version {state.get('v')!r}"
            )
        if state["meter"] is not None:
            self.meter.restore_state(state["meter"])
        for name, injector_state in state["tags"].items():
            self.tags[name].restore_state(injector_state)
        if state["mailbox"] is not None:
            self.mailbox.restore_state(state["mailbox"])
        if state["cluster"] is not None:
            self.cluster.restore_state(state["cluster"])
        for name, injector_state in state["meters"].items():
            self.meters[name].restore_state(injector_state)
        if state["arrivals"] is not None:
            self.arrivals.restore_state(state["arrivals"])
        if state["powercap"] is not None:
            self.powercap.restore_state(state["powercap"])


class FaultPlan:
    """An ordered, composable schedule of fault events."""

    def __init__(
        self,
        events: Optional[list[FaultEvent]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.events: list[FaultEvent] = list(events) if events else []
        #: The generator :meth:`random` drew from, kept so the plan's RNG
        #: cursor can be checkpointed and restored (:meth:`getstate`).
        self.rng = rng

    # -- composition ----------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append one event (returns self for chaining)."""
        self.events.append(event)
        return self

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan containing both plans' events."""
        return FaultPlan(self.events + other.events)

    def sorted_events(self) -> list[FaultEvent]:
        """Events in firing order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.events)

    # -- convenience constructors for common windows --------------------
    def meter_outage(self, at: float, duration: float) -> "FaultPlan":
        """Meter dies at ``at`` and recovers ``duration`` later."""
        self.add(FaultEvent(at, "meter", "kill"))
        self.add(FaultEvent(at + duration, "meter", "restore"))
        return self

    def meter_noise_window(
        self, at: float, duration: float, profile: MeterFaultProfile
    ) -> "FaultPlan":
        """Per-sample meter faults active over ``[at, at + duration)``."""
        self.add(FaultEvent(at, "meter", "profile", _params(profile=profile)))
        self.add(FaultEvent(at + duration, "meter", "clear_profile"))
        return self

    def tag_loss_window(
        self,
        endpoint: str,
        at: float,
        duration: float,
        loss_prob: float = 0.0,
        truncate_prob: float = 0.0,
    ) -> "FaultPlan":
        """Tag stripping/truncation on one endpoint over a window."""
        self.add(
            FaultEvent(
                at,
                f"tags:{endpoint}",
                "activate",
                _params(loss_prob=loss_prob, truncate_prob=truncate_prob),
            )
        )
        self.add(FaultEvent(at + duration, f"tags:{endpoint}", "deactivate"))
        return self

    def mailbox_freeze(
        self, core: int, at: float, duration: float
    ) -> "FaultPlan":
        """Freeze one core's sample mailbox over a window."""
        self.add(FaultEvent(at, "mailbox", "freeze", _params(core=core)))
        self.add(FaultEvent(at + duration, "mailbox", "thaw", _params(core=core)))
        return self

    def machine_crash(
        self, machine: str, at: float, duration: float
    ) -> "FaultPlan":
        """Crash one cluster machine at ``at``; recover ``duration`` later."""
        self.add(FaultEvent(at, "cluster", "crash", _params(machine=machine)))
        self.add(
            FaultEvent(at + duration, "cluster", "recover", _params(machine=machine))
        )
        return self

    def arrival_storm(
        self, at: float, duration: float, multiplier: float
    ) -> "FaultPlan":
        """Arrival-rate surge: ``multiplier`` times base over a window."""
        self.add(
            FaultEvent(at, "arrivals", "surge", _params(multiplier=multiplier))
        )
        self.add(FaultEvent(at + duration, "arrivals", "calm"))
        return self

    def cap_squeeze(
        self, at: float, duration: float, fraction: float
    ) -> "FaultPlan":
        """Power-cap squeeze to ``fraction`` of the base cap over a window."""
        self.add(
            FaultEvent(at, "powercap", "squeeze", _params(fraction=fraction))
        )
        self.add(FaultEvent(at + duration, "powercap", "release"))
        return self

    def machine_meter_outage(
        self, machine: str, at: float, duration: float
    ) -> "FaultPlan":
        """One cluster member's meter dies at ``at``; recovers later."""
        self.add(FaultEvent(at, f"meter:{machine}", "kill"))
        self.add(FaultEvent(at + duration, f"meter:{machine}", "restore"))
        return self

    # -- random plan generation -----------------------------------------
    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        duration: float,
        endpoints: tuple[str, ...] = (),
        machines: tuple[str, ...] = (),
        n_cores: int = 0,
        max_windows: int = 4,
    ) -> "FaultPlan":
        """A random-but-reproducible plan over ``[0, duration)``.

        Every window starts in the first 70% of the run and lasts at most
        25% of it, so the world always gets fault-free time at the end to
        demonstrate recovery.  Which fault kinds are eligible follows from
        the targets provided (no machines -> no crash windows, etc.).
        """
        plan = cls(rng=rng)
        kinds = ["outage", "noise"]
        if endpoints:
            kinds.append("tags")
        if n_cores > 0:
            kinds.append("mailbox")
        if machines:
            kinds.append("crash")
        n_windows = int(rng.integers(1, max_windows + 1))
        for _ in range(n_windows):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            at = float(rng.uniform(0.05, 0.7)) * duration
            span = float(rng.uniform(0.05, 0.25)) * duration
            if kind == "outage":
                plan.meter_outage(at, span)
            elif kind == "noise":
                profile = MeterFaultProfile(
                    drop_prob=float(rng.uniform(0.0, 0.3)),
                    nan_prob=float(rng.uniform(0.0, 0.2)),
                    negative_prob=float(rng.uniform(0.0, 0.15)),
                    spike_prob=float(rng.uniform(0.0, 0.15)),
                    stuck_prob=float(rng.uniform(0.0, 0.15)),
                    duplicate_prob=float(rng.uniform(0.0, 0.2)),
                    extra_delay_prob=float(rng.uniform(0.0, 0.2)),
                )
                plan.meter_noise_window(at, span, profile)
            elif kind == "tags":
                endpoint = endpoints[int(rng.integers(0, len(endpoints)))]
                plan.tag_loss_window(
                    endpoint,
                    at,
                    span,
                    loss_prob=float(rng.uniform(0.05, 0.5)),
                    truncate_prob=float(rng.uniform(0.0, 0.3)),
                )
            elif kind == "mailbox":
                plan.mailbox_freeze(int(rng.integers(0, n_cores)), at, span)
            else:
                machine = machines[int(rng.integers(0, len(machines)))]
                plan.machine_crash(machine, at, span)
        return plan

    # -- checkpoint protocol --------------------------------------------
    _PROFILE_FIELDS = (
        "drop_prob", "nan_prob", "negative_prob", "spike_prob",
        "stuck_prob", "duplicate_prob", "extra_delay_prob",
        "spike_watts", "extra_delay",
    )

    def getstate(self) -> dict:
        """The plan as plain data: events plus its RNG cursor.

        :class:`MeterFaultProfile` params are flattened to field dicts so
        the snapshot stays pickle-stable; :meth:`setstate` rebuilds them.
        """
        from repro.checkpoint.state import generator_state

        def render(value: object) -> object:
            if isinstance(value, MeterFaultProfile):
                return [
                    "__profile__",
                    {f: getattr(value, f) for f in self._PROFILE_FIELDS},
                ]
            return value

        return {
            "v": 1,
            "rng": generator_state(self.rng) if self.rng is not None else None,
            "events": [
                [e.at, e.site, e.action,
                 [[key, render(value)] for key, value in e.params]]
                for e in self.events
            ],
        }

    def setstate(self, state: dict) -> None:
        """Restore events and the RNG cursor captured by :meth:`getstate`."""
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown FaultPlan snapshot version {state.get('v')!r}"
            )
        if state["rng"] is not None:
            if self.rng is None:
                raise ValueError(
                    "snapshot carries RNG state but this plan has no bound rng"
                )
            set_generator_state(self.rng, state["rng"])

        def revive(value: object) -> object:
            if (
                isinstance(value, list)
                and len(value) == 2
                and value[0] == "__profile__"
            ):
                return MeterFaultProfile(**value[1])
            return value

        self.events = [
            FaultEvent(
                at, site, action,
                tuple((key, revive(value)) for key, value in params),
            )
            for at, site, action, params in state["events"]
        ]

    # -- execution ------------------------------------------------------
    def apply(
        self, simulator: Simulator, targets: FaultTargets, telemetry=None
    ) -> None:
        """Schedule every event against the bound injectors.

        Raises :class:`ValueError` when an event names a site the targets
        cannot resolve -- a mis-built plan should fail loudly, not silently
        skip its faults and report a spuriously clean run.  With an enabled
        ``telemetry`` handle, every firing also emits a ``fault.*`` trace
        instant (injector firings become part of the request timeline).
        """
        for event in self.sorted_events():
            callback = self._resolve(event, targets)
            if telemetry is not None:
                # Default-arg closure: late binding would make every firing
                # report the last event in the plan.
                def traced(
                    cb=callback, site=event.site, action=event.action
                ) -> None:
                    t = telemetry
                    if t.enabled:
                        t.tracer.instant(
                            simulator.now,
                            "faults",
                            f"fault.{site}.{action}",
                        )
                    cb()

                callback = traced
            simulator.schedule_at(
                event.at, callback, label=f"fault-{event.site}-{event.action}"
            )

    def _resolve(self, event: FaultEvent, targets: FaultTargets):
        site, action = event.site, event.action
        if site == "meter" or site.startswith("meter:"):
            if site == "meter":
                injector = targets.meter
            else:
                injector = targets.meters.get(site.split(":", 1)[1])
            if injector is None:
                raise ValueError(
                    f"plan targets {site!r} but no meter injector bound"
                )
            if action == "kill":
                return injector.kill
            if action == "restore":
                return injector.restore
            if action == "profile":
                profile = event.param("profile")
                return lambda: injector.set_profile(profile)
            if action == "clear_profile":
                return lambda: injector.set_profile(None)
        elif site.startswith("tags:"):
            name = site.split(":", 1)[1]
            tag_injector = targets.tags.get(name)
            if tag_injector is None:
                raise ValueError(f"no tag injector bound for endpoint {name!r}")
            if action == "activate":
                loss = event.param("loss_prob")
                truncate = event.param("truncate_prob")
                return lambda: tag_injector.activate(loss, truncate)
            if action == "deactivate":
                return tag_injector.deactivate
        elif site == "mailbox":
            mailbox = targets.mailbox
            if mailbox is None:
                raise ValueError("plan freezes a mailbox but no injector bound")
            core = event.param("core")
            if action == "freeze":
                return lambda: mailbox.freeze(core)
            if action == "thaw":
                return lambda: mailbox.thaw(core)
        elif site == "cluster":
            cluster = targets.cluster
            if cluster is None:
                raise ValueError("plan crashes a machine but no cluster injector bound")
            machine = event.param("machine")
            if action == "crash":
                return lambda: cluster.crash(machine)
            if action == "recover":
                return lambda: cluster.recover(machine)
        elif site == "arrivals":
            arrivals = targets.arrivals
            if arrivals is None:
                raise ValueError("plan surges arrivals but no injector bound")
            if action == "surge":
                multiplier = event.param("multiplier")
                return lambda: arrivals.surge(multiplier)
            if action == "calm":
                return arrivals.calm
        elif site == "powercap":
            powercap = targets.powercap
            if powercap is None:
                raise ValueError("plan squeezes the cap but no injector bound")
            if action == "squeeze":
                fraction = event.param("fraction")
                return lambda: powercap.squeeze(fraction)
            if action == "release":
                return powercap.release
        raise ValueError(f"unknown fault event {site!r}/{action!r}")
