"""Seeded fault injectors wrapping the hardware, kernel, and cluster layers.

Each injector attaches to one target through the target's dedicated
fault-injection hook (``_PeriodicMeter.fault_hook``, ``Endpoint.tag_fault``,
``SampleMailbox.frozen``, ``ClusterMachine.crash``), draws all randomness
from one :class:`numpy.random.Generator` handed in by the caller (normally a
``repro.sim.rng`` stream), and counts everything it does -- so a chaos run
can both reproduce bit-for-bit from a seed and report exactly which faults
fired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.hardware.meters import MeterSample, _PeriodicMeter
from repro.kernel.sockets import ContextTag, Endpoint, Message
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class MeterFaultProfile:
    """Per-sample fault probabilities for a meter while a window is active.

    ``drop_prob`` discards the reading entirely; ``nan_prob`` /
    ``negative_prob`` / ``spike_prob`` / ``stuck_prob`` corrupt its watts
    (a NaN, a negative glitch, a +``spike_watts`` spike, or a repeat of the
    previously published value); ``duplicate_prob`` publishes the reading
    twice; ``extra_delay_prob`` delays delivery by ``extra_delay`` seconds.
    Corruption draws are mutually exclusive (their probabilities are summed
    against one uniform draw) -- keep the sum at or below 1.
    """

    drop_prob: float = 0.0
    nan_prob: float = 0.0
    negative_prob: float = 0.0
    spike_prob: float = 0.0
    stuck_prob: float = 0.0
    duplicate_prob: float = 0.0
    extra_delay_prob: float = 0.0
    spike_watts: float = 200.0
    extra_delay: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "drop_prob", "nan_prob", "negative_prob", "spike_prob",
            "stuck_prob", "duplicate_prob", "extra_delay_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        corrupt = (
            self.nan_prob + self.negative_prob + self.spike_prob
            + self.stuck_prob
        )
        if corrupt > 1.0 + 1e-9:
            raise ValueError("corruption probabilities must sum to <= 1")


class MeterFaultInjector:
    """Injects outages and per-sample faults into one periodic meter."""

    def __init__(self, meter: _PeriodicMeter, rng: np.random.Generator) -> None:
        self.meter = meter
        self.rng = rng
        self.profile: Optional[MeterFaultProfile] = None
        self._last_watts: Optional[float] = None
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0
        self.delayed = 0
        self.outages = 0
        meter.fault_hook = self._filter

    # -- live controls (called by FaultPlan events) ---------------------
    def set_profile(self, profile: Optional[MeterFaultProfile]) -> None:
        """Activate (or with ``None`` deactivate) per-sample faulting."""
        self.profile = profile

    def kill(self) -> None:
        """Meter outage: sampling stops until :meth:`restore`."""
        self.outages += 1
        self.meter.stop()

    def restore(self) -> None:
        """Meter recovery: periodic sampling resumes."""
        self.meter.start()

    def export_stats(self) -> dict[str, float]:
        """What this injector did (chaos-report material)."""
        return {
            "meter_dropped": float(self.dropped),
            "meter_corrupted": float(self.corrupted),
            "meter_duplicated": float(self.duplicated),
            "meter_delayed": float(self.delayed),
            "meter_outages": float(self.outages),
        }

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        """RNG state, counters, and the active profile (as plain fields)."""
        from repro.checkpoint.state import generator_state

        profile = None
        if self.profile is not None:
            profile = {
                name: getattr(self.profile, name)
                for name in (
                    "drop_prob", "nan_prob", "negative_prob", "spike_prob",
                    "stuck_prob", "duplicate_prob", "extra_delay_prob",
                    "spike_watts", "extra_delay",
                )
            }
        return {
            "v": 1,
            "rng": generator_state(self.rng),
            "profile": profile,
            "last_watts": self._last_watts,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "outages": self.outages,
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown MeterFaultInjector snapshot version {state.get('v')!r}"
            )
        set_generator_state(self.rng, state["rng"])
        self.profile = (
            MeterFaultProfile(**state["profile"])
            if state["profile"] is not None
            else None
        )
        self._last_watts = state["last_watts"]
        self.dropped = state["dropped"]
        self.corrupted = state["corrupted"]
        self.duplicated = state["duplicated"]
        self.delayed = state["delayed"]
        self.outages = state["outages"]

    # -- the fault hook -------------------------------------------------
    def _filter(self, sample: MeterSample) -> list[MeterSample]:
        profile = self.profile
        if profile is None:
            self._last_watts = sample.watts
            return [sample]
        if self.rng.random() < profile.drop_prob:
            self.dropped += 1
            return []
        watts = sample.watts
        draw = self.rng.random()
        edge = profile.nan_prob
        if draw < edge:
            watts = math.nan
            self.corrupted += 1
        elif draw < (edge := edge + profile.negative_prob):
            watts = -abs(watts) - 1.0
            self.corrupted += 1
        elif draw < (edge := edge + profile.spike_prob):
            watts = watts + profile.spike_watts
            self.corrupted += 1
        elif draw < edge + profile.stuck_prob and self._last_watts is not None:
            watts = self._last_watts
            self.corrupted += 1
        available_at = sample.available_at
        if self.rng.random() < profile.extra_delay_prob:
            available_at += profile.extra_delay
            self.delayed += 1
        published = MeterSample(
            interval_end=sample.interval_end,
            available_at=available_at,
            watts=watts,
        )
        out = [published]
        if self.rng.random() < profile.duplicate_prob:
            out.append(published)
            self.duplicated += 1
        if math.isfinite(watts):
            self._last_watts = watts
        return out


class TagFaultInjector:
    """Strips or truncates in-band context tags on one endpoint.

    ``loss_prob`` removes the whole tag (the segment arrives untagged, as
    when a middlebox drops the TCP option); ``truncate_prob`` keeps the
    container id but discards the piggy-backed statistics (a shortened
    option field).  ``on_loss`` is invoked with each lost container id so
    the harness can release the in-flight reference the tag carried.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        rng: np.random.Generator,
        loss_prob: float = 0.0,
        truncate_prob: float = 0.0,
        on_loss: Optional[Callable[[int], None]] = None,
    ) -> None:
        if not 0.0 <= loss_prob <= 1.0 or not 0.0 <= truncate_prob <= 1.0:
            raise ValueError("tag fault probabilities must be in [0, 1]")
        self.endpoint = endpoint
        self.rng = rng
        self.loss_prob = loss_prob
        self.truncate_prob = truncate_prob
        self.on_loss = on_loss
        self.active = False
        self.lost_tags = 0
        self.truncated_tags = 0
        endpoint.tag_fault = self._filter

    def activate(
        self,
        loss_prob: Optional[float] = None,
        truncate_prob: Optional[float] = None,
    ) -> None:
        """Start faulting (optionally overriding the probabilities)."""
        if loss_prob is not None:
            self.loss_prob = loss_prob
        if truncate_prob is not None:
            self.truncate_prob = truncate_prob
        self.active = True

    def deactivate(self) -> None:
        """Stop faulting; segments pass through verbatim again."""
        self.active = False

    def export_stats(self) -> dict[str, float]:
        """What this injector did (chaos-report material)."""
        return {
            "tags_lost": float(self.lost_tags),
            "tags_truncated": float(self.truncated_tags),
        }

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        from repro.checkpoint.state import generator_state

        return {
            "v": 1,
            "rng": generator_state(self.rng),
            "loss_prob": self.loss_prob,
            "truncate_prob": self.truncate_prob,
            "active": self.active,
            "lost_tags": self.lost_tags,
            "truncated_tags": self.truncated_tags,
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown TagFaultInjector snapshot version {state.get('v')!r}"
            )
        set_generator_state(self.rng, state["rng"])
        self.loss_prob = state["loss_prob"]
        self.truncate_prob = state["truncate_prob"]
        self.active = state["active"]
        self.lost_tags = state["lost_tags"]
        self.truncated_tags = state["truncated_tags"]

    def _filter(self, message: Message) -> Message:
        if not self.active or message.tag.container_id is None:
            return message
        if self.rng.random() < self.loss_prob:
            self.lost_tags += 1
            if self.on_loss is not None:
                self.on_loss(message.tag.container_id)
            return replace(message, tag=ContextTag())
        if message.tag.carried_stats and self.rng.random() < self.truncate_prob:
            self.truncated_tags += 1
            return replace(
                message, tag=ContextTag(container_id=message.tag.container_id)
            )
        return message


class MailboxFaultInjector:
    """Freezes per-core sample mailboxes (stale sibling counter snapshots).

    While a core's mailbox is frozen its posts are discarded, so sibling
    chip-share reads (Eq. 3) keep seeing an arbitrarily old utilization --
    the unsynchronized-mailbox hazard Section 3.1 describes, pushed to its
    pathological extreme.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.freezes = 0

    def freeze(self, core_index: int) -> None:
        """Stop one core's mailbox from taking new posts."""
        mailbox = self.machine.cores[core_index].mailbox
        if not mailbox.frozen:
            mailbox.frozen = True
            self.freezes += 1

    def thaw(self, core_index: int) -> None:
        """Resume posts to one core's mailbox."""
        self.machine.cores[core_index].mailbox.frozen = False

    def export_stats(self) -> dict[str, float]:
        """What this injector did (chaos-report material)."""
        return {"mailbox_freezes": float(self.freezes)}

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        return {"v": 1, "freezes": self.freezes}

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown MailboxFaultInjector snapshot version {state.get('v')!r}"
            )
        self.freezes = state["freezes"]


class ClusterFaultInjector:
    """Crashes and recovers cluster machines on the simulated clock."""

    def __init__(self, machines_by_name: dict) -> None:
        self.machines = dict(machines_by_name)
        self.crashes = 0

    def crash(self, name: str) -> None:
        """Crash one machine now (its dispatcher listeners fail over)."""
        self.machines[name].crash()
        self.crashes += 1

    def recover(self, name: str) -> None:
        """Recover one machine now."""
        self.machines[name].recover()

    def export_stats(self) -> dict[str, float]:
        """What this injector did (chaos-report material)."""
        return {"machine_crashes": float(self.crashes)}

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        return {"v": 1, "crashes": self.crashes}

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown ClusterFaultInjector snapshot version {state.get('v')!r}"
            )
        self.crashes = state["crashes"]


class ArrivalSurgeInjector:
    """Multiplies a dispatcher's open-loop arrival rate (traffic storms).

    The dispatcher samples ``request_rate`` afresh for every inter-arrival
    gap, so changing it mid-run takes effect from the next arrival on --
    no rescheduling needed, and the arrival RNG stream stays untouched
    (the same draws just map to shorter gaps).
    """

    def __init__(self, dispatcher) -> None:
        self.dispatcher = dispatcher
        self.base_rate = dispatcher.request_rate
        self.surges = 0

    def surge(self, multiplier: float) -> None:
        """Scale arrivals to ``multiplier`` times the base rate."""
        if multiplier <= 0:
            raise ValueError("surge multiplier must be positive")
        self.dispatcher.request_rate = self.base_rate * multiplier
        self.surges += 1

    def calm(self) -> None:
        """Restore the base arrival rate."""
        self.dispatcher.request_rate = self.base_rate

    def export_stats(self) -> dict[str, float]:
        """What this injector did (chaos-report material)."""
        return {"arrival_surges": float(self.surges)}

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "base_rate": self.base_rate,
            "current_rate": self.dispatcher.request_rate,
            "surges": self.surges,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown ArrivalSurgeInjector snapshot version {state.get('v')!r}"
            )
        self.base_rate = state["base_rate"]
        self.dispatcher.request_rate = state["current_rate"]
        self.surges = state["surges"]


class PowerCapInjector:
    """Squeezes a cluster power cap (utility brownout, thermal event).

    The :class:`~repro.core.powercap.PowerCapEnforcer` reads ``cap_watts``
    every control interval, so a squeeze takes effect within one interval
    and the brownout ladder escalates deterministically from there.
    """

    def __init__(self, enforcer) -> None:
        self.enforcer = enforcer
        self.base_cap = enforcer.cap_watts
        self.squeezes = 0

    def squeeze(self, fraction: float) -> None:
        """Drop the cap to ``fraction`` of its base value."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("cap squeeze fraction must be in (0, 1]")
        self.enforcer.cap_watts = self.base_cap * fraction
        self.squeezes += 1

    def release(self) -> None:
        """Restore the base cap."""
        self.enforcer.cap_watts = self.base_cap

    def export_stats(self) -> dict[str, float]:
        """What this injector did (chaos-report material)."""
        return {"cap_squeezes": float(self.squeezes)}

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "base_cap": self.base_cap,
            "current_cap": self.enforcer.cap_watts,
            "squeezes": self.squeezes,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown PowerCapInjector snapshot version {state.get('v')!r}"
            )
        self.base_cap = state["base_cap"]
        self.enforcer.cap_watts = state["current_cap"]
        self.squeezes = state["squeezes"]


def schedule_meter_outage(
    simulator: Simulator,
    injector: MeterFaultInjector,
    at: float,
    duration: float,
) -> None:
    """Convenience: one kill/restore pair on the simulated clock."""
    simulator.schedule_at(at, injector.kill, label="fault-meter-kill")
    simulator.schedule_at(
        at + duration, injector.restore, label="fault-meter-restore"
    )
