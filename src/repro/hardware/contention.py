"""Optional shared-cache/memory contention model.

The paper notes (Section 4.2, prediction discussion) that per-request
energy profiles transfer across workload conditions *except* for workloads
"(like Stress) that exhibit dynamic behaviors at different resource
contention levels on the multicore".  By default this simulation executes
requests at contention-independent speed; enabling a
:class:`CacheContentionModel` on a machine makes cache/memory-heavy tasks
slow each other down on a shared chip:

* each busy core exerts *pressure* proportional to its profile's LLC and
  memory rates;
* when a chip's total pressure exceeds the threshold (roughly the
  bandwidth the uncore can absorb), every busy core's *work per cycle*
  drops -- stall cycles still burn as non-halt cycles, but fewer
  instructions (and proportionally fewer cache/memory events) retire per
  cycle, exactly how contention looks in real hardware counters.

The model is deliberately simple (linear in excess pressure) and is OFF by
default so the calibrated headline results are unaffected;
``bench_ablation_contention`` demonstrates the profile-transfer failure it
induces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.chip import Chip
    from repro.hardware.core import Core


@dataclass(frozen=True)
class CacheContentionModel:
    """Linear contention: slowdown grows with excess chip pressure."""

    #: Chip pressure (summed weighted event rates) absorbed without any
    #: slowdown.  A single heavy task (LLC ~0.016/cycle + mem ~0.009/cycle,
    #: pressure ~0.052) stays un-contended.
    pressure_threshold: float = 0.06
    #: Slowdown per unit of excess pressure.
    alpha: float = 10.0
    #: Memory transactions pressure weight relative to LLC references
    #: (a DRAM transaction occupies the shared path far longer).
    mem_weight: float = 4.0

    def core_pressure(self, core: "Core") -> float:
        """Pressure one busy core exerts on its chip's shared path."""
        profile = core.active_profile
        if profile is None:
            return 0.0
        per_cycle = (
            profile.cache_per_cycle + self.mem_weight * profile.mem_per_cycle
        )
        return per_cycle * core.duty_ratio

    def chip_pressure(self, chip: "Chip") -> float:
        """Total pressure of all busy cores on one chip."""
        return sum(self.core_pressure(core) for core in chip.cores)

    def work_fraction(self, core: "Core") -> float:
        """Instructions retired per non-halt cycle, relative to solo run.

        1.0 means un-contended; smaller values mean the core spends part of
        its cycles stalled on the shared cache/memory path.
        """
        excess = self.chip_pressure(core.chip) - self.pressure_threshold
        if excess <= 0:
            return 1.0
        return 1.0 / (1.0 + self.alpha * excess)
