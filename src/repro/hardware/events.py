"""Hardware event vectors and per-cycle activity profiles.

The paper's power model (Eq. 1/2) consumes five core-level metrics:

* ``Mcore``  -- non-halt core cycles per elapsed cycle (utilization),
* ``Mins``   -- retired instructions per elapsed cycle,
* ``Mfloat`` -- floating-point operations per elapsed cycle,
* ``Mcache`` -- last-level cache references per elapsed cycle,
* ``Mmem``   -- memory transactions per elapsed cycle,

plus machine-level disk/network activity terms used in the full-system
model (Section 3.3 and the Section 4.1 coefficient table).

:class:`EventVector` holds cumulative event *counts*; dividing a count delta
by elapsed cycles yields the ``M`` metrics.  :class:`RateProfile` describes
how a running piece of code generates events per non-halt cycle, and carries
the *hidden power* that core-level counters cannot observe -- the mechanism
by which production workloads defeat offline-calibrated models (Section 3.2,
Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Names of the per-core counted events, in canonical order.
CORE_EVENT_NAMES = (
    "nonhalt_cycles",
    "instructions",
    "flops",
    "cache_refs",
    "mem_trans",
)

#: Names of the machine-level I/O events.
IO_EVENT_NAMES = ("disk_bytes", "net_bytes")

EVENT_NAMES = CORE_EVENT_NAMES + IO_EVENT_NAMES


@dataclass(slots=True)
class EventVector:
    """Cumulative hardware event counts.

    Supports in-place accumulation and subtraction so counter banks,
    per-container statistics, and observer-effect correction can share one
    representation.

    This is the innermost data structure of the attribution stack -- every
    compute slice, counter read, and sampling correction goes through it --
    so all arithmetic is unrolled over the fixed field set.  Reflection
    (``dataclasses.fields``) in these methods once accounted for a double-
    digit share of end-to-end runtime; the hot-path lint rule in ``ci/lint``
    keeps it from creeping back in.
    """

    nonhalt_cycles: float = 0.0
    instructions: float = 0.0
    flops: float = 0.0
    cache_refs: float = 0.0
    mem_trans: float = 0.0
    disk_bytes: float = 0.0
    net_bytes: float = 0.0

    def copy(self) -> "EventVector":
        """Return an independent copy."""
        return EventVector(
            self.nonhalt_cycles,
            self.instructions,
            self.flops,
            self.cache_refs,
            self.mem_trans,
            self.disk_bytes,
            self.net_bytes,
        )

    def add(self, other: "EventVector") -> None:
        """In-place ``self += other``."""
        self.nonhalt_cycles += other.nonhalt_cycles
        self.instructions += other.instructions
        self.flops += other.flops
        self.cache_refs += other.cache_refs
        self.mem_trans += other.mem_trans
        self.disk_bytes += other.disk_bytes
        self.net_bytes += other.net_bytes

    def subtract(self, other: "EventVector", *, clamp: bool = False) -> None:
        """In-place ``self -= other``; optionally clamp each field at zero.

        Clamping implements the paper's observer-effect correction safely:
        subtracting estimated maintenance-induced events must never drive a
        physical count negative.
        """
        if clamp:
            value = self.nonhalt_cycles - other.nonhalt_cycles
            self.nonhalt_cycles = value if value > 0.0 else 0.0
            value = self.instructions - other.instructions
            self.instructions = value if value > 0.0 else 0.0
            value = self.flops - other.flops
            self.flops = value if value > 0.0 else 0.0
            value = self.cache_refs - other.cache_refs
            self.cache_refs = value if value > 0.0 else 0.0
            value = self.mem_trans - other.mem_trans
            self.mem_trans = value if value > 0.0 else 0.0
            value = self.disk_bytes - other.disk_bytes
            self.disk_bytes = value if value > 0.0 else 0.0
            value = self.net_bytes - other.net_bytes
            self.net_bytes = value if value > 0.0 else 0.0
        else:
            self.nonhalt_cycles -= other.nonhalt_cycles
            self.instructions -= other.instructions
            self.flops -= other.flops
            self.cache_refs -= other.cache_refs
            self.mem_trans -= other.mem_trans
            self.disk_bytes -= other.disk_bytes
            self.net_bytes -= other.net_bytes

    def delta_from(self, earlier: "EventVector") -> "EventVector":
        """Return ``self - earlier`` as a new vector (no clamping)."""
        return EventVector(
            self.nonhalt_cycles - earlier.nonhalt_cycles,
            self.instructions - earlier.instructions,
            self.flops - earlier.flops,
            self.cache_refs - earlier.cache_refs,
            self.mem_trans - earlier.mem_trans,
            self.disk_bytes - earlier.disk_bytes,
            self.net_bytes - earlier.net_bytes,
        )

    def scaled(self, factor: float) -> "EventVector":
        """Return a new vector with every count multiplied by ``factor``."""
        return EventVector(
            self.nonhalt_cycles * factor,
            self.instructions * factor,
            self.flops * factor,
            self.cache_refs * factor,
            self.mem_trans * factor,
            self.disk_bytes * factor,
            self.net_bytes * factor,
        )

    def is_zero(self, tol: float = 0.0) -> bool:
        """True when every count is within ``tol`` of zero."""
        return (
            abs(self.nonhalt_cycles) <= tol
            and abs(self.instructions) <= tol
            and abs(self.flops) <= tol
            and abs(self.cache_refs) <= tol
            and abs(self.mem_trans) <= tol
            and abs(self.disk_bytes) <= tol
            and abs(self.net_bytes) <= tol
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view, e.g. for trace records and reports."""
        return {
            "nonhalt_cycles": self.nonhalt_cycles,
            "instructions": self.instructions,
            "flops": self.flops,
            "cache_refs": self.cache_refs,
            "mem_trans": self.mem_trans,
            "disk_bytes": self.disk_bytes,
            "net_bytes": self.net_bytes,
        }


@dataclass(frozen=True)
class RateProfile:
    """Event generation rates of running code, per non-halt core cycle.

    ``ipc``, ``flops_per_cycle``, ``cache_per_cycle`` and ``mem_per_cycle``
    are rates relative to non-halt cycles, so a core running this profile at
    utilization ``u`` (duty-cycle fraction while scheduled) produces metric
    values ``Mins = ipc * u`` etc. per *elapsed* cycle.

    ``hidden_watts`` is extra active power, at full-speed execution of this
    profile on one core, that does **not** correspond to any counted event
    (e.g. pipeline/port contention effects the paper's Stress and power-virus
    workloads exhibit).  It scales linearly with utilization and duty cycle.
    Offline-calibrated models cannot see it; online recalibration (Section
    3.2) absorbs it into the linear coefficients for the running workload.
    """

    name: str = "generic"
    ipc: float = 1.0
    flops_per_cycle: float = 0.0
    cache_per_cycle: float = 0.0
    mem_per_cycle: float = 0.0
    hidden_watts: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("ipc", "flops_per_cycle", "cache_per_cycle", "mem_per_cycle"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")

    def events_for_cycles(self, nonhalt_cycles: float) -> EventVector:
        """Event counts produced by ``nonhalt_cycles`` of execution."""
        return EventVector(
            nonhalt_cycles=nonhalt_cycles,
            instructions=self.ipc * nonhalt_cycles,
            flops=self.flops_per_cycle * nonhalt_cycles,
            cache_refs=self.cache_per_cycle * nonhalt_cycles,
            mem_trans=self.mem_per_cycle * nonhalt_cycles,
        )

    def blended(self, other: "RateProfile", weight: float) -> "RateProfile":
        """Linear blend ``(1-weight)*self + weight*other`` of two profiles."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        w0, w1 = 1.0 - weight, weight
        return RateProfile(
            name=f"blend({self.name},{other.name},{weight:.2f})",
            ipc=w0 * self.ipc + w1 * other.ipc,
            flops_per_cycle=w0 * self.flops_per_cycle + w1 * other.flops_per_cycle,
            cache_per_cycle=w0 * self.cache_per_cycle + w1 * other.cache_per_cycle,
            mem_per_cycle=w0 * self.mem_per_cycle + w1 * other.mem_per_cycle,
            hidden_watts=w0 * self.hidden_watts + w1 * other.hidden_watts,
        )


#: Profile of the OS idle task: the core halts, producing no events.
IDLE_PROFILE = RateProfile(name="idle", ipc=0.0)
