"""Ground-truth power model and exact piecewise energy integration.

``TruePowerModel`` is the simulation's *physics*: it defines what the
machine actually dissipates given the instantaneous activity of every core,
each chip's shared maintenance domain, peripheral devices, and the constant
idle floor.  The power-container accounting layer never reads this model --
it only sees hardware counters and (delayed) meter readings, exactly like
the paper's kernel.

Two properties matter for faithful reproduction:

* **Maintenance power is chip-level truth.**  A package dissipates
  ``maintenance_watts`` whenever any of its cores is busy (Fig. 1); the
  accounting model must *approximate* each task's share of it via Eq. 3.
* **Hidden power exists.**  A profile's ``hidden_watts`` contributes to
  ground truth but to no counter, so offline-calibrated models err on
  unusual workloads (Stress, power viruses) until online recalibration
  absorbs the discrepancy (Section 3.2 / Fig. 8).

Because all activity is piecewise-constant between simulation events, the
:class:`EnergyIntegrator` integrates power exactly: callers checkpoint the
integrator *before* any state change that affects power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.events import EventVector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.machine import Machine


@dataclass(frozen=True)
class TruePowerModel:
    """Physical power coefficients for one machine model.

    Per-core coefficients are watts per unit of the corresponding ``M``
    metric (events per elapsed cycle), i.e. a core running at utilization
    ``u`` with instruction rate ``ipc`` contributes
    ``w_core*u + w_ins*ipc*u + ...`` watts.
    """

    #: Constant whole-machine idle power (fans, disks at rest, PSU loss, and
    #: the package idle floor), drawn regardless of activity.
    idle_machine_watts: float
    #: Portion of the idle floor inside each processor package (covered by
    #: the on-chip package meter; small on SandyBridge per the paper).
    package_idle_watts: float
    #: Shared maintenance power per chip while any of its cores is busy.
    maintenance_watts: float
    w_core: float
    w_ins: float
    w_flop: float
    w_cache: float
    w_mem: float
    #: Peripheral power while a device has transfers in flight.
    disk_active_watts: float = 0.0
    net_active_watts: float = 0.0

    def core_active_watts(
        self,
        utilization: float,
        ipc: float,
        flops_per_cycle: float,
        cache_per_cycle: float,
        mem_per_cycle: float,
        hidden_watts: float,
    ) -> float:
        """Active power of one core given per-non-halt-cycle rates.

        ``utilization`` is the fraction of elapsed cycles that are non-halt
        (duty ratio while busy); the other rates are per non-halt cycle, so
        the per-elapsed-cycle metrics are each rate times utilization.
        """
        if utilization <= 0.0:
            return 0.0
        return utilization * (
            self.w_core
            + self.w_ins * ipc
            + self.w_flop * flops_per_cycle
            + self.w_cache * cache_per_cycle
            + self.w_mem * mem_per_cycle
            + hidden_watts
        )

    def energy_for_events(
        self, events: EventVector, freq_hz: float, hidden_watts: float = 0.0
    ) -> float:
        """True energy of a burst of events executed at full speed.

        Used to charge impulse activity (e.g. accounting maintenance
        operations) to ground truth without modelling it as a scheduled
        task.  The burst is assumed to run at utilization 1.0 for
        ``nonhalt_cycles / freq_hz`` seconds.
        """
        cycles = events.nonhalt_cycles
        if cycles <= 0.0:
            return 0.0
        duration = cycles / freq_hz
        watts = self.core_active_watts(
            utilization=1.0,
            ipc=events.instructions / cycles,
            flops_per_cycle=events.flops / cycles,
            cache_per_cycle=events.cache_refs / cycles,
            mem_per_cycle=events.mem_trans / cycles,
            hidden_watts=hidden_watts,
        )
        return watts * duration


@dataclass
class PowerBreakdown:
    """Instantaneous power decomposition of one machine."""

    machine_watts: float
    active_watts: float
    package_watts: list[float]
    per_core_watts: list[float]
    maintenance_watts: list[float]
    peripheral_watts: float
    idle_watts: float

    def as_dict(self) -> dict[str, float]:
        """Scalar summary used in traces and reports."""
        return {
            "machine_watts": self.machine_watts,
            "active_watts": self.active_watts,
            "peripheral_watts": self.peripheral_watts,
            "idle_watts": self.idle_watts,
        }


@dataclass
class _Accumulators:
    machine_joules: float = 0.0
    active_joules: float = 0.0
    package_joules: list[float] = field(default_factory=list)
    per_core_joules: list[float] = field(default_factory=list)
    maintenance_joules: list[float] = field(default_factory=list)
    peripheral_joules: float = 0.0


class EnergyIntegrator:
    """Exact energy integration over piecewise-constant activity.

    The owning :class:`~repro.hardware.machine.Machine` calls
    :meth:`checkpoint` with the current time *before* mutating any state
    that affects power (dispatch, block, duty change, I/O start/end).  The
    integrator closes the elapsed interval at the pre-mutation power level.
    """

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self._last_time = 0.0
        n_chips = len(machine.chips)
        n_cores = machine.n_cores
        self._acc = _Accumulators(
            package_joules=[0.0] * n_chips,
            per_core_joules=[0.0] * n_cores,
            maintenance_joules=[0.0] * n_chips,
        )

    @property
    def last_time(self) -> float:
        """Simulated time up to which energy has been integrated."""
        return self._last_time

    def checkpoint(self, now: float) -> None:
        """Integrate the interval ``[last_time, now]`` at current power."""
        dt = now - self._last_time
        if dt < 0:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        if dt == 0.0:
            return
        # Fused with the power computation (Machine.integrate_power) so the
        # hot path allocates nothing; arithmetic matches power_breakdown()
        # term for term.
        self._machine.integrate_power(self._acc, dt)
        self._last_time = now

    def add_impulse(
        self,
        joules: float,
        core_index: int | None = None,
        chip_index: int | None = None,
    ) -> None:
        """Charge instantaneous energy (observer-effect maintenance work).

        ``chip_index`` may be supplied by callers that already know the
        core's package; it is derived from ``core_index`` otherwise.
        """
        if joules < 0:
            raise ValueError("impulse energy must be non-negative")
        self._acc.machine_joules += joules
        self._acc.active_joules += joules
        if core_index is not None:
            self._acc.per_core_joules[core_index] += joules
            if chip_index is None:
                chip_index = self._machine.core_by_index(core_index).chip.index
            self._acc.package_joules[chip_index] += joules

    # -- readings ------------------------------------------------------
    @property
    def machine_joules(self) -> float:
        """Cumulative whole-machine energy (idle included)."""
        return self._acc.machine_joules

    @property
    def active_joules(self) -> float:
        """Cumulative active (machine minus idle-floor) energy."""
        return self._acc.active_joules

    @property
    def peripheral_joules(self) -> float:
        """Cumulative disk/network device energy."""
        return self._acc.peripheral_joules

    def package_joules(self, chip_index: int) -> float:
        """Cumulative package energy of one chip (idle portion included)."""
        return self._acc.package_joules[chip_index]

    def per_core_joules(self, core_index: int) -> float:
        """Cumulative true active energy attributed to one core."""
        return self._acc.per_core_joules[core_index]

    def maintenance_joules(self, chip_index: int) -> float:
        """Cumulative shared maintenance energy of one chip."""
        return self._acc.maintenance_joules[chip_index]

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        acc = self._acc
        return {
            "v": 1,
            "last_time": self._last_time,
            "machine_joules": acc.machine_joules,
            "active_joules": acc.active_joules,
            "package_joules": list(acc.package_joules),
            "per_core_joules": list(acc.per_core_joules),
            "maintenance_joules": list(acc.maintenance_joules),
            "peripheral_joules": acc.peripheral_joules,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown EnergyIntegrator snapshot version {state.get('v')!r}"
            )
        self._last_time = state["last_time"]
        self._acc = _Accumulators(
            machine_joules=state["machine_joules"],
            active_joules=state["active_joules"],
            package_joules=list(state["package_joules"]),
            per_core_joules=list(state["per_core_joules"]),
            maintenance_joules=list(state["maintenance_joules"]),
            peripheral_joules=state["peripheral_joules"],
        )
