"""A multicore chip (processor package) with shared maintenance power.

The paper's key hardware observation (Fig. 1) is that a package dissipates a
chunk of *maintenance* power -- clocking circuitry, voltage regulators, and
other uncore units -- whenever **any** of its cores is active, and that this
chunk does not scale with core-level event rates.  The chip is therefore the
natural power domain boundary: ground truth charges maintenance power per
active chip, and the accounting model approximates each task's share of it
with the ``Mchipshare`` metric (Eq. 3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.core import Core

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.machine import Machine


#: Available DVFS frequency scales (P-state style, fraction of nominal).
DVFS_SCALES = (1.0, 0.875, 0.75, 0.625, 0.5)


class Chip:
    """One processor package: a set of cores plus shared uncore state.

    The package is also the DVFS domain: frequency/voltage scaling applies
    to all cores of a chip at once (per-core DVFS did not exist on the
    paper's processors) -- which is exactly why the paper reaches for
    per-core duty-cycle modulation to throttle *individual* requests.
    """

    def __init__(
        self,
        index: int,
        machine: "Machine",
        n_cores: int,
        freq_hz: float,
        overflow_threshold_cycles: float | None = None,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("a chip needs at least one core")
        self.index = index
        self.machine = machine
        self._freq_scale = 1.0
        # The voltage-derived power factors are pure functions of the P-state
        # and are read at every energy checkpoint; cache them and refresh on
        # DVFS transitions (which happen per conditioning decision, not per
        # checkpoint).
        self._dynamic_power_factor = 1.0
        self._static_power_factor = 1.0
        self._refresh_power_factors()
        # Busy-core count, maintained by Core.begin_activity/end_activity
        # (the only mutators of a core's activity state).  ``active`` and
        # ``busy_core_count`` are read on every energy checkpoint and every
        # OS utilization subsample; the counter replaces a generator scan
        # of the core list on each read.
        self._busy_count = 0
        self.cores = [
            Core(
                index=machine.next_core_index(),
                chip=self,
                freq_hz=freq_hz,
                overflow_threshold_cycles=overflow_threshold_cycles,
            )
            for _ in range(n_cores)
        ]
        self._siblings: dict[int, tuple[Core, ...]] = {}

    # ------------------------------------------------------------------
    # DVFS
    # ------------------------------------------------------------------
    @property
    def freq_scale(self) -> float:
        """Current frequency scale (1.0 = nominal)."""
        return self._freq_scale

    def set_freq_scale(self, scale: float) -> None:
        """Program a P-state; must be one of :data:`DVFS_SCALES`."""
        if scale not in DVFS_SCALES:
            raise ValueError(
                f"scale {scale} not in supported P-states {DVFS_SCALES}"
            )
        self._freq_scale = scale
        self._refresh_power_factors()
        for core in self.cores:
            core._refresh_effective_hz()

    def _refresh_power_factors(self) -> None:
        """Recompute the cached voltage-derived factors (P-state changed)."""
        voltage_sq = self.relative_voltage ** 2
        self._dynamic_power_factor = self._freq_scale * voltage_sq
        self._static_power_factor = voltage_sq

    @property
    def relative_voltage(self) -> float:
        """Supply voltage relative to nominal (affine in frequency)."""
        return 0.6 + 0.4 * self._freq_scale

    @property
    def dynamic_power_factor(self) -> float:
        """Scaling of event-driven (dynamic) power: ~ f * V^2."""
        return self._dynamic_power_factor

    @property
    def static_power_factor(self) -> float:
        """Scaling of maintenance (voltage-dependent) power: ~ V^2."""
        return self._static_power_factor

    @property
    def n_cores(self) -> int:
        """Number of cores in the package."""
        return len(self.cores)

    @property
    def active(self) -> bool:
        """True when at least one core is running a non-idle task."""
        return self._busy_count > 0

    @property
    def busy_core_count(self) -> int:
        """Number of currently busy cores."""
        return self._busy_count

    def siblings_of(self, core: Core) -> tuple[Core, ...]:
        """All other cores on the same package (cached; membership is fixed
        after construction and this is read on every accounting sample)."""
        siblings = self._siblings.get(core.index)
        if siblings is None:
            siblings = tuple(c for c in self.cores if c is not core)
            self._siblings[core.index] = siblings
        return siblings

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """P-state and busy count plus every core's state, in index order.

        The voltage-derived power factors are pure functions of the
        P-state, so they are re-derived on restore rather than captured.
        """
        return {
            "v": 1,
            "freq_scale": self._freq_scale,
            "busy_count": self._busy_count,
            "cores": [core.snapshot_state() for core in self.cores],
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(f"unknown Chip snapshot version {state.get('v')!r}")
        self._freq_scale = state["freq_scale"]
        self._refresh_power_factors()
        self._busy_count = state["busy_count"]
        for core, core_state in zip(self.cores, state["cores"]):
            core.restore_state(core_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chip(#{self.index}, {self.busy_core_count}/{self.n_cores} busy)"
