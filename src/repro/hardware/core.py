"""A simulated CPU core with duty-cycle modulation.

The core exposes exactly the knobs the paper's kernel uses:

* hardware event counters with non-halt-cycle overflow interrupts
  (:class:`~repro.hardware.counters.CounterBank`),
* per-core duty-cycle modulation in eighths (Intel's clock modulation MSR
  supports multipliers of 1/8; Section 3.4), and
* a "currently running" activity profile that the ground-truth power model
  reads.

Execution itself is driven by the kernel scheduler: it calls
:meth:`Core.run_for_cycles` to burn a slice of non-halt cycles for the
current task.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.hardware.counters import CounterBank, SampleMailbox
from repro.hardware.events import EventVector, RateProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.chip import Chip

#: Number of duty-cycle steps (Intel clock modulation uses eighths).
DUTY_LEVELS = 8


class Core:
    """One CPU core: frequency, duty cycle, counters, and current activity."""

    def __init__(
        self,
        index: int,
        chip: "Chip",
        freq_hz: float,
        overflow_threshold_cycles: float | None = None,
    ) -> None:
        if freq_hz <= 0:
            raise ValueError("core frequency must be positive")
        self.index = index
        self.chip = chip
        self.freq_hz = freq_hz
        self.counters = CounterBank(overflow_threshold_cycles)
        self.mailbox = SampleMailbox()
        self._duty_level = DUTY_LEVELS
        # freq_hz, duty level, and the chip's DVFS scale only change through
        # their setters, so the product is cached and refreshed on writes
        # (it is read on every slice start/end and accounting sample).
        self._effective_hz = freq_hz * 1.0 * chip.freq_scale
        #: Profile of the code currently on the core, or ``None`` when idle
        #: (the OS idle task halts the core).
        self.active_profile: Optional[RateProfile] = None
        #: Opaque owner tag set by the scheduler (the running process).
        self.current_owner: object | None = None
        #: Work retired per non-halt cycle relative to an un-contended run;
        #: set by the kernel at slice start when a contention model is
        #: active (1.0 otherwise).  Stall cycles still count as non-halt.
        #: Mutate through :meth:`set_work_fraction` so the cached true-power
        #: draw below is invalidated with it.
        self.current_work_fraction: float = 1.0
        #: Memoized ground-truth active watts of the current activity state
        #: (profile, duty, DVFS scale, work fraction), or ``None`` when any
        #: of those changed since the last energy checkpoint.  Owned by
        #: :meth:`Machine.integrate_power`; every mutator of power-relevant
        #: core state resets it.  Activity is piecewise-constant between
        #: simulation events, so checkpoints between mutations -- the common
        #: case -- reuse the same watts instead of re-deriving them.
        self._cached_active_watts: float | None = None

    # ------------------------------------------------------------------
    # Duty-cycle modulation (the power-conditioning actuator, Section 3.4)
    # ------------------------------------------------------------------
    @property
    def duty_level(self) -> int:
        """Current duty-cycle level, an integer in ``[1, DUTY_LEVELS]``."""
        return self._duty_level

    def set_duty_level(self, level: int) -> None:
        """Program the clock-modulation level (1 = slowest, 8 = full speed)."""
        if not 1 <= level <= DUTY_LEVELS:
            raise ValueError(f"duty level must be in [1, {DUTY_LEVELS}]")
        self._duty_level = level
        self._refresh_effective_hz()

    @property
    def duty_ratio(self) -> float:
        """Fraction of cycles the core is allowed to execute."""
        return self._duty_level / DUTY_LEVELS

    # ------------------------------------------------------------------
    # Activity state
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True when a non-idle task occupies the core."""
        return self.active_profile is not None

    @property
    def effective_hz(self) -> float:
        """Non-halt cycles per wall second under the current duty level
        and the chip's DVFS frequency scale."""
        return self._effective_hz

    def _refresh_effective_hz(self) -> None:
        """Recompute the cached rate (duty or chip DVFS scale changed)."""
        self._effective_hz = self.freq_hz * self.duty_ratio * self.chip.freq_scale
        self._cached_active_watts = None
        self.chip.machine._power_epoch += 1

    def set_work_fraction(self, work_fraction: float) -> None:
        """Install the contention-derived work fraction for the next slice.

        A write of the value already installed leaves the core's power draw
        untouched, so the watts cache and the machine's rate cache survive
        (the common case: uncontended slices re-install 1.0 every start).
        """
        if work_fraction != self.current_work_fraction:
            self.current_work_fraction = work_fraction
            self._cached_active_watts = None
            self.chip.machine._power_epoch += 1

    def begin_activity(self, profile: RateProfile, owner: object | None = None) -> None:
        """Install a running task's profile (scheduler dispatch).

        Re-installing the *same* profile object (a task continuing across
        slice boundaries on its core) does not change the core's power
        draw, so the caches survive; only a genuine activity change bumps
        the machine's power epoch.
        """
        prev = self.active_profile
        if prev is None:
            self.chip._busy_count += 1
        self.active_profile = profile
        self.current_owner = owner
        if profile is not prev:
            self._cached_active_watts = None
            self.chip.machine._power_epoch += 1

    def end_activity(self) -> None:
        """Return the core to the halted idle state."""
        changed = False
        if self.active_profile is not None:
            self.chip._busy_count -= 1
            self.active_profile = None
            changed = True
        self.current_owner = None
        if self.current_work_fraction != 1.0:
            self.current_work_fraction = 1.0
            changed = True
        if changed:
            self._cached_active_watts = None
            self.chip.machine._power_epoch += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def seconds_for_cycles(self, nonhalt_cycles: float) -> float:
        """Wall time needed to execute ``nonhalt_cycles`` at current duty."""
        if nonhalt_cycles < 0:
            raise ValueError("cycle count must be non-negative")
        return nonhalt_cycles / self._effective_hz

    def cycles_for_seconds(self, seconds: float) -> float:
        """Non-halt cycles executed in ``seconds`` at the current duty level."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        return seconds * self._effective_hz

    def run_for_cycles(
        self, nonhalt_cycles: float, work_fraction: float = 1.0
    ) -> EventVector:
        """Burn a slice of non-halt cycles for the active profile.

        ``work_fraction`` < 1 models contention stalls: all
        ``nonhalt_cycles`` elapse (and count), but only
        ``nonhalt_cycles * work_fraction`` worth of instructions and
        cache/memory events retire.

        Returns the generated events, which have already been added to the
        counter bank.  The caller (kernel) is responsible for advancing
        simulated time by :meth:`seconds_for_cycles` and for checkpointing
        the machine energy integrator around activity changes.
        """
        if self.active_profile is None:
            raise RuntimeError(f"core {self.index} is idle; nothing to run")
        events = self.active_profile.events_for_cycles(
            nonhalt_cycles * work_fraction
        )
        events.nonhalt_cycles = nonhalt_cycles
        self.counters.accumulate(events)
        return events

    def accumulate_cycles(  # hot-path
        self, nonhalt_cycles: float, work_fraction: float = 1.0
    ) -> None:
        """:meth:`run_for_cycles` without materializing the event vector.

        The kernel's slice paths discard the returned events, so this twin
        folds the same per-field arithmetic straight into the counter bank's
        running totals.  Expression shapes match ``RateProfile
        .events_for_cycles`` + ``CounterBank.accumulate`` term for term, so
        counter trajectories stay bit-identical to the allocating path.
        """
        profile = self.active_profile
        if profile is None:
            raise RuntimeError(f"core {self.index} is idle; nothing to run")
        retired = nonhalt_cycles * work_fraction
        totals = self.counters.totals
        totals.nonhalt_cycles += nonhalt_cycles
        totals.instructions += profile.ipc * retired
        totals.flops += profile.flops_per_cycle * retired
        totals.cache_refs += profile.cache_per_cycle * retired
        totals.mem_trans += profile.mem_per_cycle * retired

    def inject_events(self, events: EventVector) -> None:
        """Add out-of-band events (e.g. accounting maintenance work) to the
        counters without advancing task progress -- the observer effect."""
        self.counters.accumulate(events)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Duty/activity state plus counter bank and mailbox.

        ``active_profile`` and ``current_owner`` are live objects owned by
        the kernel's replayed processes; they are captured as names/pids
        for verification and left to replay on restore.  The memoized
        watts cache is derived state and deliberately not captured.
        """
        return {
            "v": 1,
            "duty_level": self._duty_level,
            "work_fraction": self.current_work_fraction,
            "profile": (
                self.active_profile.name
                if self.active_profile is not None else None
            ),
            "owner_pid": getattr(self.current_owner, "pid", None),
            "counters": self.counters.snapshot_state(),
            "mailbox": self.mailbox.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(f"unknown Core snapshot version {state.get('v')!r}")
        self._duty_level = state["duty_level"]
        self.current_work_fraction = state["work_fraction"]
        self._effective_hz = (
            self.freq_hz * self.duty_ratio * self.chip.freq_scale
        )
        self._cached_active_watts = None
        self.counters.restore_state(state["counters"])
        self.mailbox.restore_state(state["mailbox"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.active_profile.name if self.active_profile else "idle"
        return (
            f"Core(#{self.index} chip={self.chip.index} {state} "
            f"duty={self._duty_level}/{DUTY_LEVELS})"
        )
