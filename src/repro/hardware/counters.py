"""Per-core hardware counter banks and the sibling sample mailbox.

A :class:`CounterBank` mimics a core's performance-monitoring unit: it
accumulates event counts and supports threshold-based overflow interrupts on
non-halt cycles (the paper configures the local APIC this way so that
sampling interrupts are suppressed while the core idles).

A :class:`SampleMailbox` holds the most recent utilization sample each core
posts for its siblings.  Eq. 3's ``Mchipshare`` estimation reads sibling
mailboxes without synchronization, so an idle sibling's entry can be *stale*
-- exactly the approximation the paper describes (and corrects with the
idle-task check).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.events import EventVector


#: Width of real performance counters; registers wrap at this value.
COUNTER_WIDTH_BITS = 48
COUNTER_WRAP = float(1 << COUNTER_WIDTH_BITS)


class CounterBank:
    """Cumulative event counters for one core, with overflow thresholds.

    Like real PMU registers, the architectural read value wraps at
    ``2**48``; consumers must compute deltas modulo the counter width
    (see :func:`wrapped_delta`).  Internally an unwrapped running total is
    kept so the simulation itself never loses precision.
    """

    def __init__(
        self,
        overflow_threshold_cycles: float | None = None,
        wrap: bool = False,
    ) -> None:
        self.totals = EventVector()
        #: Non-halt cycles after which an overflow interrupt should fire,
        #: or ``None`` to disable sampling interrupts.
        self.overflow_threshold_cycles = overflow_threshold_cycles
        #: When true, :meth:`read` returns architecturally wrapped values.
        self.wrap = wrap
        self._cycles_at_last_overflow = 0.0

    def accumulate(self, events: EventVector) -> None:
        """Add freshly generated events to the cumulative totals."""
        self.totals.add(events)

    def read(self) -> EventVector:
        """Return a snapshot of the cumulative counters.

        With ``wrap`` enabled each field is reduced modulo the 48-bit
        register width, as software would observe on real hardware.
        """
        totals = self.totals
        if not self.wrap:
            return totals.copy()
        return EventVector(
            totals.nonhalt_cycles % COUNTER_WRAP,
            totals.instructions % COUNTER_WRAP,
            totals.flops % COUNTER_WRAP,
            totals.cache_refs % COUNTER_WRAP,
            totals.mem_trans % COUNTER_WRAP,
            totals.disk_bytes % COUNTER_WRAP,
            totals.net_bytes % COUNTER_WRAP,
        )

    def cycles_until_overflow(self) -> float:
        """Non-halt cycles remaining before the next overflow interrupt.

        Returns ``inf`` when overflow interrupts are disabled.
        """
        if self.overflow_threshold_cycles is None:
            return float("inf")
        consumed = self.totals.nonhalt_cycles - self._cycles_at_last_overflow
        remaining = self.overflow_threshold_cycles - consumed
        return max(remaining, 0.0)

    def acknowledge_overflow(self) -> None:
        """Re-arm the overflow interrupt from the current cycle count."""
        self._cycles_at_last_overflow = self.totals.nonhalt_cycles

    def overflow_pending(self, tol_cycles: float = 1e-6) -> bool:
        """True when the threshold has been reached since the last ack."""
        return self.cycles_until_overflow() <= tol_cycles

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        totals = self.totals
        return {
            "v": 1,
            "totals": [
                totals.nonhalt_cycles, totals.instructions, totals.flops,
                totals.cache_refs, totals.mem_trans, totals.disk_bytes,
                totals.net_bytes,
            ],
            "wrap": self.wrap,
            "overflow_threshold_cycles": self.overflow_threshold_cycles,
            "cycles_at_last_overflow": self._cycles_at_last_overflow,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown CounterBank snapshot version {state.get('v')!r}"
            )
        self.totals = EventVector(*state["totals"])
        self.wrap = state["wrap"]
        self.overflow_threshold_cycles = state["overflow_threshold_cycles"]
        self._cycles_at_last_overflow = state["cycles_at_last_overflow"]


def wrapped_delta(later: EventVector, earlier: EventVector) -> EventVector:
    """Delta between two counter snapshots, correcting 48-bit wraparound.

    When a later reading is numerically smaller than the earlier one, the
    register wrapped between the reads; the physical delta is recovered by
    adding one full counter period.  (Valid as long as fewer than ``2**48``
    events occur between consecutive samples, which millisecond-scale
    sampling guarantees by ~5 orders of magnitude.)
    """
    delta = later.delta_from(earlier)
    # Unrolled over the fixed field set (hot path: every counter sample).
    value = delta.nonhalt_cycles
    if value < 0.0:
        delta.nonhalt_cycles = value + COUNTER_WRAP if value < -0.5 else 0.0
    value = delta.instructions
    if value < 0.0:
        delta.instructions = value + COUNTER_WRAP if value < -0.5 else 0.0
    value = delta.flops
    if value < 0.0:
        delta.flops = value + COUNTER_WRAP if value < -0.5 else 0.0
    value = delta.cache_refs
    if value < 0.0:
        delta.cache_refs = value + COUNTER_WRAP if value < -0.5 else 0.0
    value = delta.mem_trans
    if value < 0.0:
        delta.mem_trans = value + COUNTER_WRAP if value < -0.5 else 0.0
    value = delta.disk_bytes
    if value < 0.0:
        delta.disk_bytes = value + COUNTER_WRAP if value < -0.5 else 0.0
    value = delta.net_bytes
    if value < 0.0:
        delta.net_bytes = value + COUNTER_WRAP if value < -0.5 else 0.0
    return delta


@dataclass
class UtilizationSample:
    """One posted per-core utilization observation."""

    time: float
    mcore: float


class SampleMailbox:
    """Latest-sample mailbox a core posts for unsynchronized sibling reads."""

    def __init__(self) -> None:
        self._latest = UtilizationSample(time=0.0, mcore=0.0)
        #: Fault-injection switch (see :mod:`repro.faults`): while frozen,
        #: posts are discarded and siblings keep reading the stale sample --
        #: the pathological extreme of the unsynchronized mailbox design.
        self.frozen = False

    def post(self, time: float, mcore: float) -> None:
        """Publish the utilization observed over the last sampling period."""
        if not 0.0 <= mcore <= 1.0 + 1e-9:
            raise ValueError(f"mcore out of range: {mcore}")
        if self.frozen:
            return
        self._latest = UtilizationSample(time=time, mcore=min(mcore, 1.0))

    def post_trusted(self, time: float, mcore: float) -> None:  # hot-path
        """:meth:`post` without the range check, for the accounting engine.

        The caller guarantees ``0 <= mcore <= 1`` (the engine clamps its
        utilization metric before publishing), so the validation and the
        redundant ``min`` are skipped.  Fault-injection freezing is still
        honoured.
        """
        if self.frozen:
            return
        self._latest = UtilizationSample(time=time, mcore=mcore)

    def peek(self) -> UtilizationSample:
        """Read the latest posted sample (possibly stale)."""
        return self._latest

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "time": self._latest.time,
            "mcore": self._latest.mcore,
            "frozen": self.frozen,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown SampleMailbox snapshot version {state.get('v')!r}"
            )
        self._latest = UtilizationSample(
            time=state["time"], mcore=state["mcore"]
        )
        self.frozen = state["frozen"]
