"""Power meters with realistic reporting periods and delays.

Two instruments from the paper's testbed are reproduced:

* :class:`PackageMeter` -- the SandyBridge on-chip (RAPL-like) meter: it
  accumulates package energy and reports once per millisecond; readings
  become visible to software about 1 ms after the interval they describe
  (the delay the paper's alignment discovers in Fig. 2A).
* :class:`WallMeter` -- a Wattsup-style wall meter: whole-machine power once
  per second, delivered over USB with roughly 1.2 s delay (Fig. 2B).

Meters observe ground truth (plus optional measurement noise) but publish
samples only after their delay, so the alignment machinery in
:mod:`repro.core.alignment` has a genuine inference problem to solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro.hardware.machine import Machine
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class MeterSample:
    """One power reading.

    ``interval_end`` is the physical time the measured interval ended;
    ``available_at`` is when software can first see the reading.
    """

    interval_end: float
    available_at: float
    watts: float


class _PeriodicMeter:
    """Common machinery: periodic energy-delta sampling with delay."""

    def __init__(
        self,
        machine: Machine,
        simulator: Simulator,
        period: float,
        delay: float,
        noise_std_watts: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("meter period must be positive")
        if delay < 0:
            raise ValueError("meter delay must be non-negative")
        self.machine = machine
        self.simulator = simulator
        self.period = period
        self.delay = delay
        self.noise_std_watts = noise_std_watts
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._samples: list[MeterSample] = []
        self._last_energy = 0.0
        self._running = False
        #: Optional fault-injection hook (see :mod:`repro.faults`): maps each
        #: produced sample to the samples actually published -- possibly
        #: none (a dropped reading), several (duplicates), or altered copies
        #: (corrupted/extra-delayed readings).  ``None`` publishes verbatim.
        self.fault_hook: Optional[
            Callable[[MeterSample], Iterable[MeterSample]]
        ] = None
        #: Times :meth:`start` transitioned the meter to running (flap count).
        self.start_count = 0

    def start(self) -> None:
        """Begin periodic sampling at the meter's period."""
        if self._running:
            return
        self._running = True
        self.start_count += 1
        self._last_energy = self._read_energy()
        self.simulator.schedule_recurring(
            self.period, self._tick, label="meter-tick"
        )

    def stop(self) -> None:
        """Stop sampling after the current interval.

        The pending tick is deliberately left armed: it self-cancels when it
        fires and finds the meter stopped.  A stop/start flap faster than
        one period therefore briefly runs two tick chains -- mirroring real
        drivers that cannot revoke an already-latched timer interrupt.
        """
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            # Stopped since this tick was armed: end this chain (the handle
            # currently firing is ours -- a flap may have started another).
            self.simulator.current_event.cancel()
            return
        self.machine.checkpoint()
        now = self.simulator.now
        energy = self._read_energy()
        watts = (energy - self._last_energy) / self.period
        self._last_energy = energy
        if self.noise_std_watts > 0.0:
            watts += float(self._rng.normal(0.0, self.noise_std_watts))
        sample = MeterSample(
            interval_end=now, available_at=now + self.delay, watts=watts
        )
        if self.fault_hook is None:
            self._samples.append(sample)
        else:
            self._samples.extend(self.fault_hook(sample))

    def _read_energy(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- consumer API ----------------------------------------------------
    @property
    def all_samples(self) -> list[MeterSample]:
        """Every sample taken so far (including not-yet-delivered ones)."""
        return list(self._samples)

    def samples_available(self, now: float) -> list[MeterSample]:
        """Samples whose readings have been delivered by time ``now``."""
        return [s for s in self._samples if s.available_at <= now]

    def latest_available(self, now: float) -> MeterSample | None:
        """Most recent delivered sample, or ``None``."""
        available = self.samples_available(now)
        return available[-1] if available else None

    def mean_watts(self, start: float = 0.0, end: float | None = None) -> float:
        """Mean measured power over sample intervals ending in a window."""
        selected = [
            s.watts
            for s in self._samples
            if s.interval_end > start and (end is None or s.interval_end <= end)
        ]
        if not selected:
            return 0.0
        return float(np.mean(selected))

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Sample history, interval bookkeeping, and noise-RNG position.

        The fault hook is a live callable owned by the fault harness; its
        presence is captured as a boolean for verification only and the
        replayed hook is kept on restore.
        """
        from repro.checkpoint.state import generator_state

        return {
            "v": 1,
            "samples": [
                [s.interval_end, s.available_at, s.watts]
                for s in self._samples
            ],
            "last_energy": self._last_energy,
            "running": self._running,
            "start_count": self.start_count,
            "noise_std_watts": self.noise_std_watts,
            "has_fault_hook": self.fault_hook is not None,
            "rng": generator_state(self._rng),
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(
                f"unknown meter snapshot version {state.get('v')!r}"
            )
        self._samples = [
            MeterSample(
                interval_end=entry[0], available_at=entry[1], watts=entry[2]
            )
            for entry in state["samples"]
        ]
        self._last_energy = state["last_energy"]
        self._running = state["running"]
        self.start_count = state["start_count"]
        self.noise_std_watts = state["noise_std_watts"]
        set_generator_state(self._rng, state["rng"])


class PackageMeter(_PeriodicMeter):
    """On-chip (RAPL-like) meter over all processor packages.

    Covers cores, uncore, and the memory controller -- i.e. chip active
    power, maintenance power, and the small package idle floor -- but not
    peripherals or the rest-of-machine idle power.
    """

    def __init__(
        self,
        machine: Machine,
        simulator: Simulator,
        period: float = 1e-3,
        delay: float = 1e-3,
        noise_std_watts: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(machine, simulator, period, delay, noise_std_watts, rng)

    def _read_energy(self) -> float:
        return sum(
            self.machine.integrator.package_joules(chip.index)
            for chip in self.machine.chips
        )


class WallMeter(_PeriodicMeter):
    """Wattsup-style whole-machine wall meter (coarse and delayed)."""

    def __init__(
        self,
        machine: Machine,
        simulator: Simulator,
        period: float = 1.0,
        delay: float = 1.2,
        noise_std_watts: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(machine, simulator, period, delay, noise_std_watts, rng)

    def _read_energy(self) -> float:
        return self.machine.integrator.machine_joules
