"""Specifications of the paper's three testbed machines.

The paper evaluates on:

* **Woodcrest** -- two dual-core Intel Xeon 5160 3.0 GHz chips (2006, 65 nm),
  poor energy proportionality, shared 4 MB L2 per chip;
* **Westmere** -- two six-core Intel Xeon L5640 2.26 GHz low-power chips
  (2010, 32 nm), 12 MB L3 per chip;
* **SandyBridge** -- one quad-core Intel Xeon E31220 3.10 GHz chip (2011,
  32 nm), 8 MB L3, with an on-chip package power meter.

Ground-truth coefficients are chosen so the *published* Section 4.1
calibration table is reproduced on SandyBridge (idle 26.1 W; maximum active
contributions 33.1 W core, 12.4 W instructions, 13.9 W cache, 8.2 W memory,
5.6 W chip-share, 1.7 W disk, 5.8 W network) and so Fig. 1's incremental
power shape holds on both SandyBridge (large idle→1-core step) and Woodcrest
(two large steps, one per chip, under the spread-first scheduling policy).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.machine import Machine
from repro.hardware.power import TruePowerModel
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class MachineSpec:
    """Buildable description of one machine model."""

    name: str
    arch: str
    n_chips: int
    cores_per_chip: int
    freq_hz: float
    true_model: TruePowerModel
    #: Whether the package exposes an on-chip power meter (SandyBridge only).
    has_package_meter: bool
    #: Default counter-overflow sampling interval, in non-halt cycles
    #: (about 1 ms of busy execution, per Section 3.5).
    overflow_threshold_cycles: float
    release_year: int

    @property
    def n_cores(self) -> int:
        """Total core count."""
        return self.n_chips * self.cores_per_chip

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Return a modified copy (for ablations and what-if experiments)."""
        return replace(self, **kwargs)


SANDYBRIDGE = MachineSpec(
    name="sandybridge",
    arch="sandybridge",
    n_chips=1,
    cores_per_chip=4,
    freq_hz=3.10e9,
    true_model=TruePowerModel(
        idle_machine_watts=26.1,
        package_idle_watts=2.2,
        maintenance_watts=5.6,
        w_core=8.275,   # 33.1 W at 4 fully-busy cores
        w_ins=1.24,     # 12.4 W at machine Mins max of 10 (4 cores, ipc 2.5)
        w_flop=0.75,
        w_cache=173.75,  # 13.9 W at machine Mcache max of 0.08
        w_mem=205.0,     # 8.2 W at machine Mmem max of 0.04
        disk_active_watts=1.7,
        net_active_watts=5.8,
    ),
    has_package_meter=True,
    overflow_threshold_cycles=3.1e6,
    release_year=2011,
)

WOODCREST = MachineSpec(
    name="woodcrest",
    arch="woodcrest",
    n_chips=2,
    cores_per_chip=2,
    freq_hz=3.00e9,
    true_model=TruePowerModel(
        idle_machine_watts=175.0,
        package_idle_watts=14.0,
        maintenance_watts=5.5,
        w_core=10.0,
        w_ins=1.9,
        w_flop=1.1,
        w_cache=210.0,
        w_mem=240.0,
        disk_active_watts=8.0,
        net_active_watts=6.5,
    ),
    has_package_meter=False,
    overflow_threshold_cycles=3.0e6,
    release_year=2006,
)

WESTMERE = MachineSpec(
    name="westmere",
    arch="westmere",
    n_chips=2,
    cores_per_chip=6,
    freq_hz=2.26e9,
    true_model=TruePowerModel(
        idle_machine_watts=120.0,
        package_idle_watts=5.0,
        maintenance_watts=4.0,
        w_core=4.6,
        w_ins=0.95,
        w_flop=0.55,
        w_cache=150.0,
        w_mem=185.0,
        disk_active_watts=6.0,
        net_active_watts=5.0,
    ),
    has_package_meter=False,
    overflow_threshold_cycles=2.26e6,
    release_year=2010,
)

ALL_SPECS = (WOODCREST, WESTMERE, SANDYBRIDGE)

_SPECS_BY_NAME = {spec.name: spec for spec in ALL_SPECS}


def spec_by_name(name: str) -> MachineSpec:
    """Look up a testbed machine spec by name."""
    try:
        return _SPECS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS_BY_NAME))
        raise KeyError(f"unknown machine {name!r}; known: {known}") from None


def build_machine(spec: MachineSpec, simulator: Simulator, name: str | None = None) -> Machine:
    """Instantiate a :class:`Machine` from a spec on a simulator."""
    return Machine(
        name=name if name is not None else spec.name,
        arch=spec.arch,
        simulator=simulator,
        true_model=spec.true_model,
        n_chips=spec.n_chips,
        cores_per_chip=spec.cores_per_chip,
        freq_hz=spec.freq_hz,
        overflow_threshold_cycles=spec.overflow_threshold_cycles,
    )
