"""The simulated machine: chips, peripheral devices, energy integration.

A :class:`Machine` aggregates one or more :class:`~repro.hardware.chip.Chip`
packages, a disk and a network device, the ground-truth power model, and an
:class:`~repro.hardware.power.EnergyIntegrator`.  The kernel must call
:meth:`Machine.checkpoint` before mutating any power-affecting state so the
integrator closes the elapsed interval at the correct (pre-mutation) power.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.chip import Chip
from repro.hardware.core import Core
from repro.hardware.power import EnergyIntegrator, PowerBreakdown, TruePowerModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class _Device:
    """Shared behaviour of peripheral devices with in-flight transfers."""

    def __init__(
        self,
        name: str,
        machine: "Machine",
        bandwidth_bytes_per_sec: float,
        base_latency_sec: float,
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        self.name = name
        self.machine = machine
        self.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec
        self.base_latency_sec = base_latency_sec
        self.inflight = 0
        self.total_bytes = 0.0

    @property
    def busy(self) -> bool:
        """True while at least one transfer is outstanding."""
        return self.inflight > 0

    def transfer_time(self, nbytes: float) -> float:
        """Latency of one transfer of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        return self.base_latency_sec + nbytes / self.bandwidth_bytes_per_sec

    def begin_transfer(self, nbytes: float) -> float:
        """Start a transfer; returns its duration.  Checkpoints energy."""
        self.machine.checkpoint()
        self.inflight += 1
        self.total_bytes += nbytes
        self.machine._power_epoch += 1
        return self.transfer_time(nbytes)

    def end_transfer(self) -> None:
        """Complete one outstanding transfer.  Checkpoints energy."""
        if self.inflight <= 0:
            raise RuntimeError(f"{self.name}: no transfer in flight")
        self.machine.checkpoint()
        self.inflight -= 1
        self.machine._power_epoch += 1

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "inflight": self.inflight,
            "total_bytes": self.total_bytes,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown _Device snapshot version {state.get('v')!r}"
            )
        self.inflight = state["inflight"]
        self.total_bytes = state["total_bytes"]


class DiskDevice(_Device):
    """Simulated disk with a fixed active power draw while transferring."""


class NetDevice(_Device):
    """Simulated NIC with a fixed active power draw while transferring."""


class Machine:
    """One multicore server machine."""

    def __init__(
        self,
        name: str,
        arch: str,
        simulator: "Simulator",
        true_model: TruePowerModel,
        n_chips: int,
        cores_per_chip: int,
        freq_hz: float,
        overflow_threshold_cycles: float | None = None,
        disk_bandwidth: float = 100e6,
        disk_latency: float = 4e-3,
        net_bandwidth: float = 125e6,
        net_latency: float = 100e-6,
    ) -> None:
        self.name = name
        self.arch = arch
        self.simulator = simulator
        self.true_model = true_model
        self.freq_hz = freq_hz
        self._core_counter = 0
        self.chips = [
            Chip(
                index=i,
                machine=self,
                n_cores=cores_per_chip,
                freq_hz=freq_hz,
                overflow_threshold_cycles=overflow_threshold_cycles,
            )
            for i in range(n_chips)
        ]
        self.cores: list[Core] = [core for chip in self.chips for core in chip.cores]
        self.disk = DiskDevice("disk", self, disk_bandwidth, disk_latency)
        self.net = NetDevice("net", self, net_bandwidth, net_latency)
        self.integrator = EnergyIntegrator(self)
        #: Monotonic counter bumped by every mutation of power-relevant
        #: state (dispatch, duty/DVFS, work fraction, device transfers).
        #: :meth:`integrate_power` memoizes all power *rates* against it:
        #: activity is piecewise-constant between mutations, so most
        #: checkpoints replay cached rates instead of re-deriving them.
        self._power_epoch = 0
        self._rate_epoch = -1
        self._rate_cache: tuple | None = None
        #: The OS kernel driving this machine; set by Kernel.__init__ so
        #: cross-machine message delivery lands on the right kernel.
        self.kernel = None
        #: Optional shared-cache contention model (see
        #: :mod:`repro.hardware.contention`); ``None`` disables contention.
        self.contention = None

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def next_core_index(self) -> int:
        """Allocate the next machine-global core index (used by chips)."""
        index = self._core_counter
        self._core_counter += 1
        return index

    @property
    def n_cores(self) -> int:
        """Total cores across all chips."""
        return sum(chip.n_cores for chip in self.chips)

    def core_by_index(self, index: int) -> Core:
        """Look up a core by machine-global index."""
        return self.cores[index]

    @property
    def busy_core_count(self) -> int:
        """Number of busy cores machine-wide."""
        return sum(1 for core in self.cores if core.busy)

    # ------------------------------------------------------------------
    # Ground-truth power
    # ------------------------------------------------------------------
    def power_breakdown(self) -> PowerBreakdown:
        """Instantaneous ground-truth power decomposition."""
        model = self.true_model
        per_core = []
        maintenance = []
        package = []
        for chip in self.chips:
            chip_core_watts = 0.0
            for core in chip.cores:
                profile = core.active_profile
                if profile is None:
                    watts = 0.0
                else:
                    # Contention stalls retire fewer events per non-halt
                    # cycle, shrinking the event-driven power accordingly.
                    wf = core.current_work_fraction
                    watts = model.core_active_watts(
                        utilization=core.duty_ratio,
                        ipc=profile.ipc * wf,
                        flops_per_cycle=profile.flops_per_cycle * wf,
                        cache_per_cycle=profile.cache_per_cycle * wf,
                        mem_per_cycle=profile.mem_per_cycle * wf,
                        hidden_watts=profile.hidden_watts,
                    ) * chip.dynamic_power_factor
                per_core.append(watts)
                chip_core_watts += watts
            maint = (
                model.maintenance_watts * chip.static_power_factor
                if chip.active
                else 0.0
            )
            maintenance.append(maint)
            package.append(chip_core_watts + maint + model.package_idle_watts)
        peripheral = 0.0
        if self.disk.busy:
            peripheral += model.disk_active_watts
        if self.net.busy:
            peripheral += model.net_active_watts
        active = sum(per_core) + sum(maintenance) + peripheral
        return PowerBreakdown(
            machine_watts=model.idle_machine_watts + active,
            active_watts=active,
            package_watts=package,
            per_core_watts=per_core,
            maintenance_watts=maintenance,
            peripheral_watts=peripheral,
            idle_watts=model.idle_machine_watts,
        )

    def integrate_power(self, acc, dt: float) -> None:
        """Accumulate ``dt`` seconds at the current power level into ``acc``.

        Hot-path twin of :meth:`power_breakdown` used by the energy
        integrator: identical arithmetic in identical order (so joule totals
        are bit-for-bit the same), but accumulating straight into the
        integrator's lists instead of materializing a
        :class:`~repro.hardware.power.PowerBreakdown` per checkpoint.

        Two elisions keep the twin bit-identical while skipping work:

        * Idle cores draw exactly 0.0 W, and adding ``0.0`` to a
          non-negative IEEE accumulator is the identity, so their
          accumulator updates are skipped outright.
        * Activity is piecewise-constant between checkpoints, so every
          power *rate* is memoized against :attr:`_power_epoch` (bumped by
          each dispatch, duty/DVFS change, work-fraction change, and device
          transfer).  Most checkpoints replay the cached rates; the rebuild
          path re-derives them with the original arithmetic in the original
          order, so the cached floats equal the fresh ones bit for bit.
        """
        if self._rate_epoch != self._power_epoch:
            self._rebuild_rate_cache()
        busy_watts, chip_rates, machine_rate, active, peripheral = self._rate_cache
        per_core_joules = acc.per_core_joules
        for core_index, watts in busy_watts:
            per_core_joules[core_index] += watts * dt
        package_joules = acc.package_joules
        maintenance_joules = acc.maintenance_joules
        for chip_index, maint, package_rate in chip_rates:
            maintenance_joules[chip_index] += maint * dt
            package_joules[chip_index] += package_rate * dt
        acc.machine_joules += machine_rate * dt
        acc.active_joules += active * dt
        acc.peripheral_joules += peripheral * dt

    def _rebuild_rate_cache(self) -> None:
        """Re-derive all instantaneous power rates (state changed).

        Mirrors :meth:`power_breakdown` term for term -- same expressions,
        same accumulation order -- so the memoized rates are bit-identical
        to what the un-cached loop computed on every checkpoint.
        """
        model = self.true_model
        busy_watts = []
        chip_rates = []
        core_sum = 0.0
        maint_sum = 0.0
        core_index = 0
        for chip in self.chips:
            chip_core_watts = 0.0
            chip_busy = False
            dynamic_factor = chip._dynamic_power_factor
            for core in chip.cores:
                profile = core.active_profile
                if profile is None:
                    core_index += 1
                    continue
                chip_busy = True
                watts = core._cached_active_watts
                if watts is None:
                    wf = core.current_work_fraction
                    watts = model.core_active_watts(
                        utilization=core.duty_ratio,
                        ipc=profile.ipc * wf,
                        flops_per_cycle=profile.flops_per_cycle * wf,
                        cache_per_cycle=profile.cache_per_cycle * wf,
                        mem_per_cycle=profile.mem_per_cycle * wf,
                        hidden_watts=profile.hidden_watts,
                    ) * dynamic_factor
                    core._cached_active_watts = watts
                busy_watts.append((core_index, watts))
                core_index += 1
                chip_core_watts += watts
                core_sum += watts
            maint = (
                model.maintenance_watts * chip._static_power_factor
                if chip_busy
                else 0.0
            )
            maint_sum += maint
            chip_rates.append(
                (chip.index, maint, chip_core_watts + maint + model.package_idle_watts)
            )
        peripheral = 0.0
        if self.disk.busy:
            peripheral += model.disk_active_watts
        if self.net.busy:
            peripheral += model.net_active_watts
        active = core_sum + maint_sum + peripheral
        self._rate_cache = (
            busy_watts,
            chip_rates,
            model.idle_machine_watts + active,
            active,
            peripheral,
        )
        self._rate_epoch = self._power_epoch

    def checkpoint(self) -> None:
        """Close the current energy interval at the present simulated time.

        Fuses :meth:`EnergyIntegrator.checkpoint` and the rate-cache replay
        of :meth:`integrate_power` into one call frame -- this runs several
        times per simulation event, so the wrapper hops matter.  Arithmetic
        is identical statement for statement.
        """
        integrator = self.integrator
        now = self.simulator._now
        dt = now - integrator._last_time
        # Most checkpoints are re-checkpoints at the same instant (several
        # state mutations per simulation event); skip the work outright.
        if dt == 0.0:
            return
        if dt < 0:
            raise ValueError(
                f"time went backwards: {now} < {integrator._last_time}"
            )
        if self._rate_epoch != self._power_epoch:
            self._rebuild_rate_cache()
        busy_watts, chip_rates, machine_rate, active, peripheral = self._rate_cache
        acc = integrator._acc
        per_core_joules = acc.per_core_joules
        for core_index, watts in busy_watts:
            per_core_joules[core_index] += watts * dt
        package_joules = acc.package_joules
        maintenance_joules = acc.maintenance_joules
        for chip_index, maint, package_rate in chip_rates:
            maintenance_joules[chip_index] += maint * dt
            package_joules[chip_index] += package_rate * dt
        acc.machine_joules += machine_rate * dt
        acc.active_joules += active * dt
        acc.peripheral_joules += peripheral * dt
        integrator._last_time = now

    def add_impulse_energy(
        self,
        joules: float,
        core_index: int | None = None,
        chip_index: int | None = None,
    ) -> None:
        """Charge instantaneous energy to ground truth (observer effect).

        Callers that already know the core's package (the accounting engine
        caches it) pass ``chip_index`` to skip the core->chip lookup.
        """
        self.integrator.add_impulse(joules, core_index, chip_index)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Topology counters, devices, chips, and the energy integrator.

        The rate cache is derived state: it is invalidated on restore and
        rebuilt on the next checkpoint with the original arithmetic, so the
        re-derived rates are bit-identical to the captured run's.
        """
        return {
            "v": 1,
            "core_counter": self._core_counter,
            "power_epoch": self._power_epoch,
            "disk": self.disk.snapshot_state(),
            "net": self.net.snapshot_state(),
            "chips": [chip.snapshot_state() for chip in self.chips],
            "integrator": self.integrator.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown Machine snapshot version {state.get('v')!r}"
            )
        self._core_counter = state["core_counter"]
        self._power_epoch = state["power_epoch"]
        self._rate_epoch = -1
        self._rate_cache = None
        self.disk.restore_state(state["disk"])
        self.net.restore_state(state["net"])
        for chip, chip_state in zip(self.chips, state["chips"]):
            chip.restore_state(chip_state)
        self.integrator.restore_state(state["integrator"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.name!r}, arch={self.arch}, "
            f"{len(self.chips)}x{self.chips[0].n_cores} cores)"
        )
