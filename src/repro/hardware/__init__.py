"""Simulated multicore server hardware.

This package stands in for the paper's physical testbed: Intel Woodcrest,
Westmere, and SandyBridge machines with per-core hardware event counters,
per-core duty-cycle modulation, a chip-level shared maintenance power
domain, peripheral (disk/network) devices, and two power meters (an on-chip
RAPL-like package meter and a Wattsup-like wall meter, both with reporting
delay).

Ground-truth power is computed by :class:`~repro.hardware.power.TruePowerModel`
and integrated exactly over piecewise-constant activity intervals, so every
error reported by the accounting layer is genuine model error, as in the
paper.
"""

from repro.hardware.events import EventVector, RateProfile
from repro.hardware.counters import CounterBank, SampleMailbox
from repro.hardware.core import Core, DUTY_LEVELS
from repro.hardware.chip import Chip
from repro.hardware.power import TruePowerModel, PowerBreakdown, EnergyIntegrator
from repro.hardware.machine import Machine, DiskDevice, NetDevice
from repro.hardware.meters import PackageMeter, WallMeter, MeterSample
from repro.hardware.contention import CacheContentionModel
from repro.hardware.specs import (
    MachineSpec,
    SANDYBRIDGE,
    WOODCREST,
    WESTMERE,
    build_machine,
    spec_by_name,
)

__all__ = [
    "EventVector",
    "RateProfile",
    "CounterBank",
    "SampleMailbox",
    "Core",
    "DUTY_LEVELS",
    "Chip",
    "TruePowerModel",
    "PowerBreakdown",
    "EnergyIntegrator",
    "Machine",
    "DiskDevice",
    "NetDevice",
    "PackageMeter",
    "WallMeter",
    "MeterSample",
    "CacheContentionModel",
    "MachineSpec",
    "SANDYBRIDGE",
    "WOODCREST",
    "WESTMERE",
    "build_machine",
    "spec_by_name",
]
