"""Simulated operating system kernel.

The kernel interprets *process programs* -- Python generators that yield
:mod:`actions <repro.kernel.process>` such as ``Compute``, ``Send``,
``Recv``, ``Fork`` -- and schedules them onto the simulated machine's cores.
It reproduces the OS mechanisms the paper's power containers hook into:

* per-core scheduling with a performance-first (chip-spreading) wakeup
  policy, preemption, and context-switch notifications;
* non-halt-cycle counter-overflow interrupts delivered per core;
* sockets whose buffered segments are individually tagged with the sender's
  request context (Section 3.3's persistent-connection-safe design);
* ``fork``/``wait``/``exit`` with context inheritance; and
* blocking disk/network I/O charged to the requesting context.

The power-container facility (:mod:`repro.core`) attaches to the kernel via
the :class:`~repro.kernel.kernel.KernelHooks` observer interface; the kernel
itself knows nothing about power.
"""

from repro.kernel.process import (
    Compute,
    DiskIO,
    Exit,
    Fork,
    NetIO,
    Process,
    ProcessState,
    Recv,
    Send,
    Sleep,
    SyncAccess,
    WaitChild,
)
from repro.kernel.sockets import ContextTag, Endpoint, Message, SocketPair
from repro.kernel.scheduler import Scheduler
from repro.kernel.kernel import Kernel, KernelHooks

__all__ = [
    "Compute",
    "DiskIO",
    "Exit",
    "Fork",
    "NetIO",
    "Process",
    "ProcessState",
    "Recv",
    "Send",
    "Sleep",
    "SyncAccess",
    "WaitChild",
    "ContextTag",
    "Endpoint",
    "Message",
    "SocketPair",
    "Scheduler",
    "Kernel",
    "KernelHooks",
]
