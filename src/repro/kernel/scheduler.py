"""Run queues and the core-selection (wakeup) policy.

The paper observes (Fig. 1, Woodcrest) that Linux's performance-maximizing
policy spreads runnable tasks across *chips* before doubling up cores on one
chip -- which is why both sockets' maintenance power turns on at two busy
cores.  :meth:`Scheduler.select_idle_core` reproduces that spread-first
policy; everything else is plain FIFO run queues with optional per-core
pinning (used by the calibration microbenchmarks).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.hardware.core import Core
from repro.hardware.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process


class Scheduler:
    """FIFO run queues with a chip-spreading idle-core selection policy."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.global_queue: deque["Process"] = deque()
        self.pinned_queues: dict[int, deque["Process"]] = {
            core.index: deque() for core in machine.cores
        }
        #: Core indexes currently executing a slice (set by the kernel).
        self.occupied: set[int] = set()

    # ------------------------------------------------------------------
    # Core selection
    # ------------------------------------------------------------------
    def idle_cores(self) -> list[Core]:
        """Cores with no slice in progress."""
        return [c for c in self.machine.cores if c.index not in self.occupied]

    def select_idle_core(self, process: "Process") -> Optional[Core]:
        """Pick an idle core for a waking process, or ``None``.

        Unpinned processes go to the idle core on the chip with the fewest
        busy cores (spread-first), tie-broken by chip then core index.
        Pinned processes only ever run on their pinned core.
        """
        if process.pinned_core is not None:
            core = self.machine.core_by_index(process.pinned_core)
            return core if core.index not in self.occupied else None
        idle = self.idle_cores()
        if not idle:
            return None
        return min(
            idle,
            key=lambda c: (c.chip.busy_core_count, c.chip.index, c.index),
        )

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    def enqueue(self, process: "Process") -> None:
        """Append a ready process to the appropriate queue."""
        if process.pinned_core is not None:
            self.pinned_queues[process.pinned_core].append(process)
        else:
            self.global_queue.append(process)

    def next_for_core(self, core: Core) -> Optional["Process"]:
        """Pop the next process this core should run, or ``None``."""
        pinned = self.pinned_queues[core.index]
        if pinned:
            return pinned.popleft()
        if self.global_queue:
            return self.global_queue.popleft()
        return None

    def has_waiting_for(self, core: Core) -> bool:
        """True when some ready process could use this core."""
        return bool(self.pinned_queues[core.index]) or bool(self.global_queue)

    def remove(self, process: "Process") -> None:
        """Drop a process from any queue it sits in (e.g. killed)."""
        try:
            self.global_queue.remove(process)
        except ValueError:
            pass
        if process.pinned_core is not None:
            try:
                self.pinned_queues[process.pinned_core].remove(process)
            except ValueError:
                pass

    @property
    def ready_count(self) -> int:
        """Total queued (not yet running) ready processes."""
        return len(self.global_queue) + sum(
            len(q) for q in self.pinned_queues.values()
        )
