"""The simulated OS kernel: action interpretation, dispatch, interrupts.

The kernel owns one machine.  It interprets process programs (generators
yielding actions), runs :class:`~repro.kernel.process.Compute` actions as
timed slices on cores, delivers counter-overflow interrupts at non-halt
cycle thresholds, and routes socket messages with per-segment context tags.

Observers (the power-container facility, tests) attach a
:class:`KernelHooks` implementation.  Hook call sites mirror the paper's
instrumentation points:

* ``on_dispatch`` / ``on_undispatch`` -- request context switches on a core
  (sampling scenario 1 in Section 3.3);
* ``on_overflow`` -- the periodic counter-overflow sampling interrupt;
* ``on_binding_change`` -- a running or waking process receives a new
  context binding via a tagged socket segment (sampling scenario 2);
* ``on_fork`` / ``on_exit`` -- container inheritance and reference counting;
* ``on_send`` / ``on_recv`` / ``on_io`` -- message and I/O attribution.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from heapq import heappush as _heappush
from typing import Any, Generator, Optional

from repro.hardware.core import Core
from repro.hardware.machine import Machine
from repro.kernel.process import (
    Compute,
    DiskIO,
    Exit,
    Fork,
    NetIO,
    Process,
    ProcessState,
    Recv,
    Send,
    Sleep,
    SyncAccess,
    WaitChild,
)
from repro.kernel.sockets import ContextTag, Endpoint, Message
from repro.kernel.scheduler import Scheduler
from repro.sim.engine import ScheduledEvent, SimulationError, Simulator
from repro.sim.trace import TraceRecorder

#: Tolerance, in cycles, for treating a Compute action as finished.
_CYCLE_EPS = 1e-3


class KernelHooks:
    """Observer interface; all methods are no-ops by default."""

    def on_dispatch(self, core: Core, process: Process) -> None:
        """A process starts occupying a core."""

    def on_undispatch(self, core: Core, process: Process, reason: str) -> None:
        """A process stops occupying a core (block/preempt/exit)."""

    def on_overflow(self, core: Core, process: Process) -> None:
        """Counter-overflow sampling interrupt fired on a busy core."""

    def on_binding_change(
        self, process: Process, old_id: Optional[int], new_id: Optional[int]
    ) -> None:
        """A process's request-context binding is about to change."""

    def on_fork(self, parent: Process, child: Process) -> None:
        """A child inherited its parent's context binding."""

    def on_exit(self, process: Process) -> None:
        """A process exited (container refcount may drop)."""

    def on_send(self, process: Process, message: Message, dest: Endpoint) -> None:
        """A tagged message left a process."""

    def on_recv(self, process: Process, message: Message, source: Endpoint) -> None:
        """A process consumed a buffered message."""

    def on_io(self, process: Process, device_name: str, nbytes: float) -> None:
        """A process initiated a blocking device transfer."""

    def on_sync(self, process: Process, key: Any) -> None:
        """A process touched a user-level synchronization object."""

    def export_stats(self, process: Process) -> Optional[dict[str, float]]:
        """Container statistics to piggy-back on cross-machine messages."""
        return None


@dataclass(slots=True)
class _Slice:
    """Bookkeeping for one in-progress Compute slice on a core."""

    process: Process
    start_time: float
    planned_cycles: float
    quantum_deadline: float
    end_event: ScheduledEvent
    #: Work retired per non-halt cycle during this slice (contention);
    #: held constant for the slice's (~1 ms) duration.
    work_fraction: float = 1.0


class Kernel:
    """Simulated OS kernel bound to one machine."""

    def __init__(
        self,
        machine: Machine,
        simulator: Simulator,
        hooks: KernelHooks | None = None,
        quantum: float = 2e-3,
        trace: TraceRecorder | None = None,
    ) -> None:
        if quantum <= 0:
            raise ValueError("scheduling quantum must be positive")
        self.machine = machine
        machine.kernel = self
        self.simulator = simulator
        self.hooks = hooks if hooks is not None else KernelHooks()
        self.quantum = quantum
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.scheduler = Scheduler(machine)
        self._pids = itertools.count(1)
        self.processes: dict[int, Process] = {}
        self._slices: dict[int, _Slice] = {}
        self._slice_pool: dict[int, _Slice] = {}
        #: Processes blocked in WaitChild, keyed by the awaited child pid.
        self._wait_for_child: dict[int, Process] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.simulator._now

    def spawn(
        self,
        program: Generator,
        name: str = "proc",
        container_id: Optional[int] = None,
        pinned_core: Optional[int] = None,
        parent: Optional[Process] = None,
    ) -> Process:
        """Create a process and make it runnable."""
        if pinned_core is not None and not (
            0 <= pinned_core < self.machine.n_cores
        ):
            raise ValueError(
                f"pinned core {pinned_core} out of range "
                f"[0, {self.machine.n_cores})"
            )
        process = Process(
            pid=next(self._pids),
            name=name,
            program=program,
            container_id=container_id,
            pinned_core=pinned_core,
            parent=parent,
            spawned_at=self.now,
        )
        self.processes[process.pid] = process
        if parent is not None:
            parent.children.append(process)
        self.trace.record(self.now, "spawn", pid=process.pid, name=name)
        self._make_ready(process)
        return process

    def inject(self, endpoint: Endpoint, message: Message) -> None:
        """Deliver an externally-generated message (request arrival).

        Routed through the endpoint's machine's kernel, so injecting into a
        remote machine's listener from any kernel handle is safe.
        """
        endpoint.machine.kernel._deliver(endpoint, message)

    def set_core_duty(self, core: Core, level: int) -> None:
        """Change a core's duty-cycle level, fixing up any active slice.

        A running slice was planned at the old effective frequency, so it is
        closed at the elapsed cycle count and re-planned at the new speed.
        """
        if core.duty_level == level:
            return
        active = self._slices.get(core.index)
        if active is not None:
            self._close_slice_partial(core, active)
        self.machine.checkpoint()
        core.set_duty_level(level)
        self.trace.record(self.now, "duty", core=core.index, level=level)
        if active is not None:
            self._start_slice(active.process, core,
                              quantum_deadline=active.quantum_deadline)

    def set_chip_frequency(self, chip, scale: float) -> None:
        """Program a chip's DVFS P-state, fixing up all active slices.

        Every running slice on the chip was planned at the old effective
        frequency, so each is closed at its elapsed cycle count and
        re-planned at the new speed -- the same treatment as a duty change,
        but chip-wide (DVFS is a package-level knob).
        """
        if chip.freq_scale == scale:
            return
        interrupted: list[tuple] = []
        for core in chip.cores:
            active = self._slices.get(core.index)
            if active is not None:
                self._close_slice_partial(core, active)
                interrupted.append((core, active))
        self.machine.checkpoint()
        chip.set_freq_scale(scale)
        self.trace.record(self.now, "dvfs", chip=chip.index, scale=scale)
        for core, active in interrupted:
            self._start_slice(active.process, core,
                              quantum_deadline=active.quantum_deadline)

    def rebind(self, process: Process, container_id: Optional[int]) -> None:
        """Change a process's request-context binding (with notification)."""
        if process.container_id == container_id:
            return
        self.hooks.on_binding_change(process, process.container_id, container_id)
        self.trace.record(
            self.now, "rebind", pid=process.pid,
            old=process.container_id, new=container_id,
        )
        process.container_id = container_id

    def running_on(self, core: Core) -> Optional[Process]:
        """Process currently executing a slice on the core, if any."""
        active = self._slices.get(core.index)
        return active.process if active is not None else None

    def effective_counters(self, core: Core):
        """Counter snapshot including the in-progress slice's events.

        The simulation materializes a slice's events when the slice ends;
        real hardware counters tick continuously.  Observers that read
        counters at arbitrary times (e.g. the facility's periodic model
        tracer) must therefore add the events the current slice has
        produced so far.
        """
        snapshot = core.counters.read()
        active = self._slices.get(core.index)
        if active is not None and core.active_profile is not None:
            elapsed = self.now - active.start_time
            wf = active.work_fraction
            cycles = min(
                core.cycles_for_seconds(elapsed),
                active.process.compute_remaining / wf,
            )
            if cycles > 0:
                inflight = core.active_profile.events_for_cycles(cycles * wf)
                inflight.nonhalt_cycles = cycles
                snapshot.add(inflight)
        return snapshot

    def effective_core_counters(  # hot-path
        self, core: Core
    ) -> tuple[float, float, float, float, float]:
        """CPU fields of :meth:`effective_counters` as a plain 5-tuple.

        Allocation-free twin for per-tick observers (the facility's model
        tracer) that only consume the five CPU counters.  The in-flight
        slice contribution uses the same expression shapes as
        ``RateProfile.events_for_cycles`` + ``EventVector.add``, so values
        are bit-identical to the snapshot path.  Wrapping banks fall back
        to the full snapshot (the modulo must apply before the in-flight
        add, exactly as :meth:`effective_counters` orders it).
        """
        bank = core.counters
        if bank.wrap:
            snapshot = self.effective_counters(core)
            return (
                snapshot.nonhalt_cycles,
                snapshot.instructions,
                snapshot.flops,
                snapshot.cache_refs,
                snapshot.mem_trans,
            )
        totals = bank.totals
        cycles_t = totals.nonhalt_cycles
        ins_t = totals.instructions
        flops_t = totals.flops
        cache_t = totals.cache_refs
        mem_t = totals.mem_trans
        active = self._slices.get(core.index)
        profile = core.active_profile
        if active is not None and profile is not None:
            elapsed = self.now - active.start_time
            wf = active.work_fraction
            cycles = min(
                core.cycles_for_seconds(elapsed),
                active.process.compute_remaining / wf,
            )
            if cycles > 0:
                retired = cycles * wf
                cycles_t += cycles
                ins_t += profile.ipc * retired
                flops_t += profile.flops_per_cycle * retired
                cache_t += profile.cache_per_cycle * retired
                mem_t += profile.mem_per_cycle * retired
        return (cycles_t, ins_t, flops_t, cache_t, mem_t)

    # ------------------------------------------------------------------
    # Readiness and dispatch
    # ------------------------------------------------------------------
    def _make_ready(self, process: Process) -> None:
        process.state = ProcessState.READY
        core = self.scheduler.select_idle_core(process)
        if core is not None:
            self._dispatch(process, core)
        else:
            self.scheduler.enqueue(process)

    def _dispatch(self, process: Process, core: Core) -> None:
        process.state = ProcessState.RUNNING
        process.core_index = core.index
        self.scheduler.occupied.add(core.index)
        self.hooks.on_dispatch(core, process)
        if self.trace.enabled:
            self.trace.record(self.now, "dispatch", pid=process.pid, core=core.index)
        self._advance(process, core, quantum_deadline=self.now + self.quantum)

    def _release_core(self, process: Process, core: Core, reason: str) -> None:
        self.machine.checkpoint()
        self.hooks.on_undispatch(core, process, reason)
        core.end_activity()
        self.scheduler.occupied.discard(core.index)
        process.core_index = None
        if self.trace.enabled:
            self.trace.record(
                self.now, "undispatch", pid=process.pid, core=core.index, reason=reason
            )

    def _schedule_next(self, core: Core) -> None:
        nxt = self.scheduler.next_for_core(core)
        if nxt is not None:
            self._dispatch(nxt, core)

    # ------------------------------------------------------------------
    # Action interpretation
    # ------------------------------------------------------------------
    def _advance(
        self, process: Process, core: Core, quantum_deadline: float
    ) -> None:
        """Interpret actions until a slice starts or the process leaves CPU."""
        while True:
            if (
                isinstance(process.current_action, Compute)
                and process.compute_remaining > _CYCLE_EPS
            ):
                self._start_slice(process, core, quantum_deadline)
                return

            try:
                action = process.program.send(process.pending_result)
            except StopIteration as stop:
                self._do_exit(process, getattr(stop, "value", None))
                self._release_core(process, core, "exit")
                self._schedule_next(core)
                return
            process.pending_result = None
            process.current_action = action

            if isinstance(action, Compute):
                process.compute_remaining = action.cycles
                continue  # loop will start the slice (or skip a 0-cycle one)

            if isinstance(action, Send):
                self._do_send(process, action)
                continue

            if isinstance(action, Recv):
                if action.endpoint.has_data:
                    message = action.endpoint.dequeue()
                    self._consume_message(process, message, action.endpoint)
                    continue
                if not action.blocking:
                    process.pending_result = None
                    continue
                process.state = ProcessState.BLOCKED
                action.endpoint.waiters.append(process)
                self._release_core(process, core, "recv-block")
                self._schedule_next(core)
                return

            if isinstance(action, Fork):
                child = self.spawn(
                    action.program,
                    name=action.name,
                    container_id=process.container_id,
                    parent=process,
                )
                self.hooks.on_fork(process, child)
                self.trace.record(
                    self.now, "fork", parent=process.pid, child=child.pid
                )
                process.pending_result = child
                # spawn() may have consumed this core?  It cannot: this core
                # is marked occupied while we interpret actions.
                continue

            if isinstance(action, WaitChild):
                child = action.child
                if child.state is ProcessState.ZOMBIE:
                    self._reap(child)
                    process.pending_result = child.exit_value
                    continue
                if child.state is ProcessState.DEAD:
                    process.pending_result = child.exit_value
                    continue
                process.state = ProcessState.BLOCKED
                self._wait_for_child[child.pid] = process
                self._release_core(process, core, "wait-block")
                self._schedule_next(core)
                return

            if isinstance(action, Sleep):
                process.state = ProcessState.BLOCKED
                self.simulator.schedule(
                    action.seconds, self._wake, process, label="sleep-wake"
                )
                self._release_core(process, core, "sleep")
                self._schedule_next(core)
                return

            if isinstance(action, (DiskIO, NetIO)):
                device = (
                    self.machine.disk
                    if isinstance(action, DiskIO)
                    else self.machine.net
                )
                duration = device.begin_transfer(action.nbytes)
                self.hooks.on_io(process, device.name, action.nbytes)
                if self.trace.enabled:
                    self.trace.record(
                        self.now, "io", pid=process.pid,
                        device=device.name, nbytes=action.nbytes,
                    )
                process.state = ProcessState.BLOCKED
                self.simulator.schedule(
                    duration, self._finish_io, process, device, label="io-done"
                )
                self._release_core(process, core, "io-block")
                self._schedule_next(core)
                return

            if isinstance(action, SyncAccess):
                # A trapped user-level synchronization access: let the
                # tracking layer infer the request stage transfer.
                self.hooks.on_sync(process, action.key)
                if self.trace.enabled:
                    self.trace.record(
                        self.now, "sync", pid=process.pid, key=str(action.key)
                    )
                continue

            if isinstance(action, Exit):
                self._do_exit(process, action.value)
                self._release_core(process, core, "exit")
                self._schedule_next(core)
                return

            raise TypeError(f"unknown action from {process}: {action!r}")

    # ------------------------------------------------------------------
    # Compute slices
    # ------------------------------------------------------------------
    def _start_slice(
        self, process: Process, core: Core, quantum_deadline: float
    ) -> None:
        action = process.current_action
        assert isinstance(action, Compute)
        self.machine.checkpoint()
        core.begin_activity(action.profile, owner=process)
        # Contention (if modelled) is evaluated at slice start and held for
        # the slice's ~1 ms duration; stalls stretch the cycles needed.
        work_fraction = (
            self.machine.contention.work_fraction(core)
            if self.machine.contention is not None
            else 1.0
        )
        core.set_work_fraction(work_fraction)

        # Inlined seconds_for_cycles / cycles_until_overflow (identical
        # expressions; this runs once per compute slice and the operands
        # are already validated non-negative).
        effective_hz = core._effective_hz
        dt = (process.compute_remaining / work_fraction) / effective_hz
        counters = core.counters
        threshold = counters.overflow_threshold_cycles
        if threshold is not None:
            remaining = threshold - (
                counters.totals.nonhalt_cycles
                - counters._cycles_at_last_overflow
            )
            dt_overflow = (
                0.0 if remaining < 0.0 else remaining
            ) / effective_hz
            if dt_overflow < dt:
                dt = dt_overflow
        now = self.now
        dt_quantum = quantum_deadline - now
        if dt_quantum < 0.0:
            dt_quantum = 0.0
        if dt_quantum < dt:
            dt = dt_quantum
        planned_cycles = dt * effective_hz
        # Inlined Simulator.schedule (one slice-end event per compute
        # slice): same guards and push, minus the wrapper call.  ``dt`` is
        # non-negative by construction, so only finiteness is checked.
        simulator = self.simulator
        end_time = simulator._now + dt
        if math.isnan(end_time) or math.isinf(end_time):
            raise SimulationError(f"non-finite event time {end_time!r}")
        event = ScheduledEvent(
            time=end_time,
            callback=self._end_slice,
            args=(core.index,),
            label="slice-end",
        )
        _heappush(simulator._queue, (end_time, next(simulator._seq), event))
        if len(simulator._queue) >= simulator._sweep_threshold:
            simulator._sweep_cancelled()
        # Per-core _Slice objects are pooled: a core runs one slice at a
        # time and nothing holds a slice reference across slices, so the
        # record is recycled instead of allocated per slice.
        slice_record = self._slice_pool.get(core.index)
        if slice_record is None:
            slice_record = _Slice(
                process=process,
                start_time=now,
                planned_cycles=planned_cycles,
                quantum_deadline=quantum_deadline,
                end_event=event,
                work_fraction=work_fraction,
            )
            self._slice_pool[core.index] = slice_record
        else:
            slice_record.process = process
            slice_record.start_time = now
            slice_record.planned_cycles = planned_cycles
            slice_record.quantum_deadline = quantum_deadline
            slice_record.end_event = event
            slice_record.work_fraction = work_fraction
        self._slices[core.index] = slice_record

    def _close_slice_partial(self, core: Core, active: _Slice) -> None:
        """Close a slice early (duty change): account elapsed cycles."""
        active.end_event.cancel()
        self.machine.checkpoint()
        elapsed = self.now - active.start_time
        wf = active.work_fraction
        cycles = min(
            core.cycles_for_seconds(elapsed),
            active.process.compute_remaining / wf,
        )
        if cycles > 0:
            core.accumulate_cycles(cycles, wf)
            active.process.compute_remaining -= cycles * wf
            active.process.cpu_seconds += elapsed
        del self._slices[core.index]
        core.end_activity()

    def _end_slice(self, core_index: int) -> None:
        core = self.machine.cores[core_index]
        active = self._slices.pop(core_index)
        process = active.process
        self.machine.checkpoint()

        now = self.simulator._now
        elapsed = now - active.start_time
        wf = active.work_fraction
        # Inlined cycles_for_seconds (elapsed is non-negative here).
        cycles = min(
            elapsed * core._effective_hz, process.compute_remaining / wf
        )
        core.accumulate_cycles(cycles, wf)
        process.compute_remaining -= cycles * wf
        process.cpu_seconds += elapsed

        action_done = process.compute_remaining <= _CYCLE_EPS
        # Inlined overflow_pending(tol_cycles=1.0): clamping the remaining
        # cycles at zero cannot change a <= 1.0 comparison.
        counters = core.counters
        threshold = counters.overflow_threshold_cycles
        overflow = threshold is not None and (
            threshold
            - (
                counters.totals.nonhalt_cycles
                - counters._cycles_at_last_overflow
            )
            <= 1.0
        )
        quantum_expired = now >= active.quantum_deadline - 1e-12

        if overflow:
            self.hooks.on_overflow(core, process)
            core.counters.acknowledge_overflow()
            if self.trace.enabled:
                self.trace.record(
                    self.now, "overflow", core=core.index, pid=process.pid
                )

        if action_done:
            process.compute_remaining = 0.0
            process.pending_result = None
            process.current_action = None
            # Keep the core but fall back into the interpreter.  The quantum
            # keeps ticking across actions of the same process.
            self._advance(process, core, active.quantum_deadline)
            return

        if quantum_expired and self.scheduler.has_waiting_for(core):
            process.state = ProcessState.READY
            self._release_core(process, core, "preempt")
            self.scheduler.enqueue(process)
            self._schedule_next(core)
            return

        # Continue the same action: either post-overflow, or quantum renewed
        # because nobody is waiting.
        deadline = (
            now + self.quantum if quantum_expired else active.quantum_deadline
        )
        self._start_slice(process, core, deadline)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def _do_send(self, process: Process, action: Send) -> None:
        endpoint = action.endpoint
        if endpoint.peer is None:
            raise RuntimeError(f"endpoint {endpoint.name} is not connected")
        dest = endpoint.peer
        cross = dest.machine is not endpoint.machine
        stats = self.hooks.export_stats(process) if cross else None
        message = Message(
            nbytes=action.nbytes,
            payload=action.payload,
            tag=ContextTag(
                container_id=process.container_id, carried_stats=stats
            ),
            reply_to=action.reply_to,
            sent_at=self.now,
            sender_pid=process.pid,
        )
        self.hooks.on_send(process, message, dest)
        if self.trace.enabled:
            self.trace.record(
                self.now, "send", pid=process.pid,
                dest=dest.name, nbytes=action.nbytes,
            )
        if not cross:
            self._deliver(dest, message)
            return
        # Cross-machine: occupy both NICs for the transfer duration, then
        # deliver after the propagation latency.
        src_duration = endpoint.machine.net.begin_transfer(action.nbytes)
        dest.machine.net.begin_transfer(action.nbytes)
        delay = src_duration + endpoint.pair_latency

        def complete() -> None:
            endpoint.machine.net.end_transfer()
            dest.machine.net.end_transfer()
            # Deliver through the destination machine's own kernel so the
            # receiver wakes on its own cores and its own facility's hooks.
            dest.machine.kernel._deliver(dest, message)

        self.simulator.schedule(delay, complete, label="net-deliver")

    def _deliver(self, endpoint: Endpoint, message: Message) -> None:
        if endpoint.waiters:
            process = endpoint.waiters.popleft()
            # Naive whole-socket tagging must still route the newest tag
            # through the endpoint, so enqueue+dequeue even for a waiter.
            endpoint.enqueue(message)
            delivered = endpoint.dequeue()
            self._consume_message(process, delivered, endpoint)
            self._make_ready(process)
        else:
            endpoint.enqueue(message)

    def _consume_message(
        self, process: Process, message: Message, endpoint: Endpoint
    ) -> None:
        """Apply context inheritance and hand the message to the process."""
        tag = message.tag
        if tag.container_id is not None and tag.container_id != process.container_id:
            self.rebind(process, tag.container_id)
        self.hooks.on_recv(process, message, endpoint)
        if self.trace.enabled:
            self.trace.record(
                self.now, "recv", pid=process.pid, source=endpoint.name,
                ctx=tag.container_id,
            )
        process.pending_result = message

    # ------------------------------------------------------------------
    # Blocking completions
    # ------------------------------------------------------------------
    def _wake(self, process: Process) -> None:
        if process.state is not ProcessState.BLOCKED:
            return
        self._make_ready(process)

    def _finish_io(self, process: Process, device) -> None:
        device.end_transfer()
        self._wake(process)

    # ------------------------------------------------------------------
    # Exit / wait
    # ------------------------------------------------------------------
    def _do_exit(self, process: Process, value: Any) -> None:
        process.exit_value = value
        process.state = ProcessState.ZOMBIE
        process.program.close()
        self.hooks.on_exit(process)
        self.trace.record(self.now, "exit", pid=process.pid)
        waiter = self._wait_for_child.pop(process.pid, None)
        if waiter is not None:
            self._reap(process)
            waiter.pending_result = process.exit_value
            self._make_ready(waiter)
        elif process.parent is None or not process.parent.alive:
            self._reap(process)

    def _reap(self, child: Process) -> None:
        child.state = ProcessState.DEAD
        if child.parent is not None and child in child.parent.children:
            child.parent.children.remove(child)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Pid counter plus a plain rendering of the live process world.

        Processes hold running generator frames, which cannot be captured;
        the process table, run queues, and in-progress slices are rendered
        as plain data for restore-time *verification* against the replayed
        world, and the replayed objects are kept.  Only the pid counter is
        imposed on restore.
        """
        pid_value = next(self._pids)
        self._pids = itertools.count(pid_value)
        processes = {
            str(pid): [
                proc.name,
                proc.container_id,
                proc.pinned_core,
                proc.state.name,
                proc.compute_remaining,
                proc.cpu_seconds,
                proc.core_index,
            ]
            for pid, proc in sorted(self.processes.items())
        }
        slices = {
            str(core_index): [
                rec.process.pid,
                rec.start_time,
                rec.planned_cycles,
                rec.quantum_deadline,
                rec.work_fraction,
            ]
            for core_index, rec in sorted(self._slices.items())
        }
        sched = self.scheduler
        return {
            "v": 1,
            "pid_next": pid_value,
            "quantum": self.quantum,
            "processes": processes,
            "slices": slices,
            "wait_for_child": {
                str(child_pid): waiter.pid
                for child_pid, waiter in sorted(self._wait_for_child.items())
            },
            "occupied": sorted(sched.occupied),
            "global_queue": [p.pid for p in sched.global_queue],
            "pinned_queues": {
                str(core_index): [p.pid for p in queue]
                for core_index, queue in sorted(sched.pinned_queues.items())
                if queue
            },
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown Kernel snapshot version {state.get('v')!r}"
            )
        self._pids = itertools.count(state["pid_next"])
        self.quantum = state["quantum"]
