"""Processes and the actions their programs yield.

A *program* is a Python generator.  Each ``yield`` hands the kernel one
action object; the kernel performs it (possibly blocking the process) and
resumes the generator with the action's result.  This coroutine style keeps
workload models readable::

    def handler(sock):
        while True:
            msg = yield Recv(sock)
            yield Compute(cycles=2e6, profile=PHP_PROFILE)
            yield Send(msg.reply_to, nbytes=2048)

Programs run until they return (or yield :class:`Exit`), at which point the
process becomes a zombie until its parent reaps it with
:class:`WaitChild` -- mirroring the fork/wait4/exit flows the paper's
request-tracking follows (Fig. 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.hardware.events import RateProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.sockets import Endpoint


# ----------------------------------------------------------------------
# Actions a program may yield
# ----------------------------------------------------------------------
@dataclass
class Compute:
    """Execute ``cycles`` non-halt cycles with the given activity profile."""

    cycles: float
    profile: RateProfile

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycle count must be non-negative")


@dataclass
class Send:
    """Send ``nbytes`` over a socket endpoint (non-blocking).

    The kernel tags the message with the sender's current request context
    (Section 3.3).  ``payload`` travels with the message; ``reply_to`` names
    the endpoint a receiver should answer on.
    """

    endpoint: "Endpoint"
    nbytes: float = 0.0
    payload: Any = None
    reply_to: Optional["Endpoint"] = None


@dataclass
class Recv:
    """Receive on a socket endpoint; result is a Message.

    Receiving a tagged segment rebinds the caller to the segment's request
    context -- the in-band propagation mechanism of Section 3.3.  With
    ``blocking=False`` an empty buffer yields ``None`` immediately instead
    of blocking (event-driven servers poll this way).
    """

    endpoint: "Endpoint"
    blocking: bool = True


@dataclass
class Fork:
    """Spawn a child process running ``program``; result is the child.

    The child inherits the parent's request-context binding, as the paper's
    containers propagate across ``fork`` (Fig. 4's latex/dvipng helpers).
    """

    program: Generator
    name: str = "child"


@dataclass
class WaitChild:
    """Block until the given child exits; result is its exit value."""

    child: "Process"


@dataclass
class Sleep:
    """Block for a fixed simulated duration (think time, timers)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("sleep duration must be non-negative")


@dataclass
class DiskIO:
    """Blocking disk transfer of ``nbytes`` (charged to the caller's context)."""

    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("byte count must be non-negative")


@dataclass
class NetIO:
    """Blocking raw network transfer of ``nbytes`` outside the socket layer."""

    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("byte count must be non-negative")


@dataclass
class SyncAccess:
    """Touch a user-level synchronization object (futex-style syscall).

    Event-driven servers multiplex many requests inside one process; the
    OS cannot see those user-level stage transfers through sockets or
    scheduling.  The paper's future-work suggestion (after Whodunit [11])
    is to trap accesses to critical synchronization data structures: each
    request's continuation guards its state with a request-private lock,
    so the lock address identifies the request being resumed.  Yielding
    ``SyncAccess(key)`` models that trapped access; the facility learns the
    key's context binding on first sight and rebinds the process on every
    later access.
    """

    key: Any


@dataclass
class Exit:
    """Terminate the process with an exit value."""

    value: Any = None


Action = (Compute, Send, Recv, Fork, WaitChild, Sleep, DiskIO, NetIO,
          SyncAccess, Exit)


# ----------------------------------------------------------------------
# Process
# ----------------------------------------------------------------------
class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"
    DEAD = "dead"


@dataclass
class Process:
    """One schedulable simulated process (or thread)."""

    pid: int
    name: str
    program: Generator
    state: ProcessState = ProcessState.READY
    #: Request-context container identifier currently bound to the process,
    #: or ``None`` for untracked (background) activity.
    container_id: Optional[int] = None
    #: Core index this process is pinned to, or ``None`` for any core.
    pinned_core: Optional[int] = None
    parent: Optional["Process"] = None
    children: list["Process"] = field(default_factory=list)
    exit_value: Any = None
    #: Action currently being executed/waited on.
    current_action: Any = None
    #: Remaining non-halt cycles of the current Compute action.
    compute_remaining: float = 0.0
    #: Value to send into the generator on next resume.
    pending_result: Any = None
    #: Core the process is currently running on (while RUNNING).
    core_index: Optional[int] = None
    #: Cumulative scheduled CPU time (seconds of non-idle occupancy).
    cpu_seconds: float = 0.0
    spawned_at: float = 0.0

    def __hash__(self) -> int:
        return self.pid

    def __eq__(self, other: object) -> bool:
        return self is other

    @property
    def alive(self) -> bool:
        """True until the process has exited."""
        return self.state not in (ProcessState.ZOMBIE, ProcessState.DEAD)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Process(pid={self.pid}, {self.name!r}, {self.state.value}, "
            f"ctx={self.container_id})"
        )
