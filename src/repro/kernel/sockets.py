"""Sockets with per-segment request-context tagging.

Section 3.3's key mechanism: each buffered socket segment carries the
sender's request-context identifier (stored in a TCP option field on the
real system).  On a *persistent* connection, a new request's segment may
arrive before a previously buffered segment is read; tagging the whole
socket would then mis-bind the reader to the newest context.  Tagging each
segment individually -- and rebinding the reader according to the segment it
actually reads -- is the safe design, and the naive whole-socket mode is
kept available (``per_segment_tagging=False``) for the ablation test that
demonstrates the hazard.

Cross-machine endpoints additionally piggy-back container statistics on the
tag so a dispatcher can do cluster-wide accounting (Section 3.4).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process
    from repro.hardware.machine import Machine


@dataclass(frozen=True)
class ContextTag:
    """Request-context label attached to a socket segment.

    ``container_id`` is ``None`` for untracked senders.  ``carried_stats``
    holds cumulative runtime/energy/power snapshots when a message crosses a
    machine boundary (Section 3.4's tagged request/response messages).
    """

    container_id: Optional[int] = None
    carried_stats: Optional[dict[str, float]] = None


@dataclass
class Message:
    """One socket segment: byte count, payload, tag, and reply route."""

    nbytes: float
    payload: Any = None
    tag: ContextTag = field(default_factory=ContextTag)
    reply_to: Optional["Endpoint"] = None
    sent_at: float = 0.0
    sender_pid: Optional[int] = None


class Endpoint:
    """One end of a socket (or an accept-queue style shared endpoint).

    Multiple processes may block in ``recv`` on the same endpoint; arriving
    segments wake them FIFO -- this models a pool of worker processes
    sharing a listener, the way high-throughput servers pool request
    executions on workers (Section 4.2).
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        machine: "Machine",
        name: str = "",
        per_segment_tagging: bool = True,
    ) -> None:
        self.id = next(self._ids)
        self.machine = machine
        self.name = name or f"ep{self.id}"
        self.buffer: deque[Message] = deque()
        #: Processes blocked in Recv on this endpoint, FIFO.
        self.waiters: deque["Process"] = deque()
        self.peer: Optional["Endpoint"] = None
        self.per_segment_tagging = per_segment_tagging
        #: Whole-socket tag used when per-segment tagging is disabled
        #: (the naive, unsafe design the paper warns about).
        self.socket_tag: ContextTag = ContextTag()
        #: Propagation latency to the peer, set when paired.
        self.pair_latency: float = 0.0
        self.total_messages = 0
        #: Optional fault-injection hook (see :mod:`repro.faults`): rewrites
        #: each arriving segment before buffering -- modelling in-band tag
        #: loss or truncation on the wire.  ``None`` buffers verbatim.
        self.tag_fault: Optional[Callable[[Message], Message]] = None

    @property
    def has_data(self) -> bool:
        """True when at least one segment is buffered."""
        return bool(self.buffer)

    def enqueue(self, message: Message) -> None:
        """Buffer an arriving segment (kernel use only)."""
        if self.tag_fault is not None:
            message = self.tag_fault(message)
        if not self.per_segment_tagging:
            # Naive mode: the socket inherits the newest tag, and every
            # buffered segment is (incorrectly) read with it.
            self.socket_tag = message.tag
        self.buffer.append(message)
        self.total_messages += 1

    def dequeue(self) -> Message:
        """Pop the oldest buffered segment (kernel use only)."""
        message = self.buffer.popleft()
        if not self.per_segment_tagging:
            message = Message(
                nbytes=message.nbytes,
                payload=message.payload,
                tag=self.socket_tag,
                reply_to=message.reply_to,
                sent_at=message.sent_at,
                sender_pid=message.sender_pid,
            )
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Endpoint({self.name!r}@{self.machine.name}, "
            f"buffered={len(self.buffer)}, waiters={len(self.waiters)})"
        )


class SocketPair:
    """A connected pair of endpoints, possibly spanning machines."""

    def __init__(
        self,
        a: Endpoint,
        b: Endpoint,
        latency: float = 0.0,
    ) -> None:
        if latency < 0:
            raise ValueError("socket latency must be non-negative")
        self.a = a
        self.b = b
        a.peer = b
        b.peer = a
        a.pair_latency = latency
        b.pair_latency = latency
        self.latency = latency

    @property
    def cross_machine(self) -> bool:
        """True when the two endpoints live on different machines."""
        return self.a.machine is not self.b.machine

    @staticmethod
    def local(machine: "Machine", name: str = "sock", per_segment_tagging: bool = True) -> "SocketPair":
        """Create a same-machine socket pair (e.g. web server <-> database)."""
        a = Endpoint(machine, f"{name}.a", per_segment_tagging)
        b = Endpoint(machine, f"{name}.b", per_segment_tagging)
        return SocketPair(a, b, latency=0.0)

    @staticmethod
    def remote(
        machine_a: "Machine",
        machine_b: "Machine",
        name: str = "conn",
        latency: float = 200e-6,
        per_segment_tagging: bool = True,
    ) -> "SocketPair":
        """Create a cross-machine connection with network latency."""
        a = Endpoint(machine_a, f"{name}.a", per_segment_tagging)
        b = Endpoint(machine_b, f"{name}.b", per_segment_tagging)
        return SocketPair(a, b, latency=latency)
