"""Named deterministic random-number streams.

Experiments need independent randomness per concern (request arrivals,
service-time jitter, meter noise, ...) that stays stable when unrelated code
adds or removes random draws.  :class:`RngHub` derives one
:class:`numpy.random.Generator` per stream name from a root seed, so each
stream is reproducible in isolation.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngHub:
    """Factory for named, independently-seeded random generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed of the hub."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngHub":
        """Derive a child hub whose streams are independent of this hub's."""
        digest = hashlib.sha256(f"{self._seed}:fork:{name}".encode()).digest()
        return RngHub(int.from_bytes(digest[:8], "little"))

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Root seed plus every materialized stream's bit-generator state."""
        from repro.checkpoint.state import generator_state

        return {
            "v": 1,
            "seed": self._seed,
            "streams": {
                name: generator_state(self._streams[name])
                for name in sorted(self._streams)
            },
        }

    def restore_state(self, state: dict) -> None:
        """Re-seed every named stream to its captured position."""
        from repro.checkpoint.state import set_generator_state

        if state.get("v") != 1:
            raise ValueError(f"unknown RngHub snapshot version {state.get('v')!r}")
        self._seed = state["seed"]
        for name, gen_state in state["streams"].items():
            set_generator_state(self.stream(name), gen_state)
