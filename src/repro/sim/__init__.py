"""Discrete-event simulation engine underlying the reproduction.

The engine provides a virtual clock, a deterministic event queue, named
random-number streams, and a trace recorder.  All other subsystems
(:mod:`repro.hardware`, :mod:`repro.kernel`, :mod:`repro.workloads`) run on
top of one :class:`~repro.sim.engine.Simulator` instance.
"""

from repro.sim.engine import Simulator, ScheduledEvent, SimulationError
from repro.sim.rng import RngHub
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "RngHub",
    "TraceRecorder",
    "TraceEvent",
]
