"""Lightweight simulation trace recording.

The kernel and the power-container facility emit trace events (context
switches, socket sends, fork/exit, throttle changes).  Traces back the
request-flow figure (paper Fig. 4) and several tests that assert causality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence at a simulated time."""

    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:.6f}] {self.kind}({parts})"


class TraceRecorder:
    """Append-only store of :class:`TraceEvent` with simple filtering."""

    def __init__(self, enabled: bool = True, capacity: int = 1_000_000) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._events: list[TraceEvent] = []

    def record(self, time: float, kind: str, **detail: Any) -> None:
        """Record one event (no-op when disabled or at capacity)."""
        if not self.enabled or len(self._events) >= self._capacity:
            return
        self._events.append(TraceEvent(time=time, kind=kind, detail=detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """All events whose kind is one of ``kinds``, in time order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def matching(self, **detail: Any) -> list[TraceEvent]:
        """All events whose detail contains every given key/value pair."""
        return [
            e
            for e in self._events
            if all(e.detail.get(k) == v for k, v in detail.items())
        ]

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
