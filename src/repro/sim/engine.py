"""Deterministic discrete-event simulation core.

The :class:`Simulator` keeps a priority queue of timestamped callbacks.
Events at equal timestamps fire in scheduling order (FIFO), which makes every
run fully deterministic for a given seed and schedule -- a requirement for
reproducible experiments and for the resumable accounting logic built on top.

Time is measured in simulated **seconds** as a float.  Sub-microsecond
activity (e.g. a container maintenance operation that takes 0.95 us) is
representable without special handling.

Performance notes (this is the innermost loop of every experiment):

* Queue entries are plain ``(time, seq, event)`` tuples.  The ``seq`` drawn
  from a single monotonic counter is unique, so tuple comparison never falls
  through to the event object, and heap operations stay in C.
* Periodic activity (meters, trace ticks, counter-overflow sampling) uses
  :meth:`schedule_recurring`: the engine re-pushes the same event object
  after each firing instead of allocating a fresh handle per period.  The
  re-push draws its ``seq`` immediately after the callback returns -- the
  exact point where the old "reschedule yourself as your last statement"
  pattern drew it -- so event interleaving (and therefore every seeded
  fingerprint) is unchanged.
* Cancelled entries are swept (filter + re-heapify) once they dominate an
  oversized queue, bounding memory under workloads that cancel most of what
  they schedule (e.g. slice-end events cut short by context switches).
  Heapify preserves pop order because ``(time, seq)`` is a total order.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulation engine."""


@dataclass(slots=True)
class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    ``period`` is ``None`` for one-shot events.  For recurring events it is
    the firing interval: after the callback returns the engine re-arms the
    same handle ``period`` seconds later, until :meth:`cancel` is called
    (from inside the callback or outside).
    """

    time: float
    callback: Callable[..., None]
    args: tuple
    label: str = ""
    cancelled: bool = False
    period: Optional[float] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips (and stops re-arming) it."""
        self.cancelled = True


#: Queue length below which cancelled-entry sweeps are never attempted.
_SWEEP_MIN_SIZE = 512


class Simulator:
    """A discrete-event simulator with a float-seconds virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        #: Heap of ``(time, seq, ScheduledEvent)`` tuples.
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._event_count = 0
        #: Queue length that triggers the next cancelled-entry sweep check.
        self._sweep_threshold = _SWEEP_MIN_SIZE
        #: The event whose callback is currently executing (``None`` between
        #: events).  A recurring callback cancels *this* to stop its own
        #: chain -- self-identifying, so two live chains sharing a callback
        #: (a stop/start flap race) each shut down independently.
        self.current_event: Optional[ScheduledEvent] = None
        #: Callbacks fired after every :meth:`run_epoch` barrier, in
        #: registration order.  Sharded simulation uses these to flush
        #: cross-shard outboxes exactly at the epoch boundary.
        self._drain_hooks: list[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._event_count

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Linear in queue size; intended for tests and progress reporting,
        not for per-event polling.  See :attr:`raw_pending` for the raw
        entry count including cancelled-but-unswept entries.
        """
        return sum(1 for entry in self._queue if not entry[2].cancelled)

    @property
    def raw_pending(self) -> int:
        """Raw queue entry count, including cancelled entries (diagnostic)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # Inlined schedule_at (this is called once per compute slice): a
        # non-negative delay from a finite clock can never land in the
        # past, so only the finiteness check remains.
        time = self._now + delay
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"non-finite event time {time!r}")
        event = ScheduledEvent(time=time, callback=callback, args=args, label=label)
        heapq.heappush(self._queue, (time, next(self._seq), event))
        if len(self._queue) >= self._sweep_threshold:
            self._sweep_cancelled()
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = ScheduledEvent(time=time, callback=callback, args=args, label=label)
        heapq.heappush(self._queue, (time, next(self._seq), event))
        if len(self._queue) >= self._sweep_threshold:
            self._sweep_cancelled()
        return event

    def schedule_recurring(
        self,
        period: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
        first_delay: Optional[float] = None,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` every ``period`` seconds.

        The first firing happens ``first_delay`` seconds from now (default:
        one full period).  After each firing the engine re-arms the same
        handle, so periodic work costs one heap push per period and zero
        handle allocations.  Stop the chain with ``handle.cancel()`` --
        typically from inside the callback, which reproduces the classic
        "check a running flag, return without rescheduling" shutdown of
        self-rescheduling callbacks.
        """
        if period <= 0 or math.isnan(period) or math.isinf(period):
            raise SimulationError(f"invalid recurrence period {period!r}")
        delay = period if first_delay is None else first_delay
        event = self.schedule(delay, callback, *args, label=label)
        event.period = period
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is drained."""
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Execute the next live event.  Returns ``False`` when none remain."""
        self._drop_cancelled_head()
        if not self._queue:
            return False
        _, _, event = heapq.heappop(self._queue)
        self._now = event.time
        self._event_count += 1
        self.current_event = event
        try:
            event.callback(*event.args)
        finally:
            self.current_event = None
        # Re-arm recurring events after (and only after) a normal return.
        # Drawing the seq here keeps the global scheduling order identical
        # to a callback that rescheduled itself as its last statement.
        if event.period is not None and not event.cancelled:
            event.time = self._now + event.period
            heapq.heappush(self._queue, (event.time, next(self._seq), event))
        return True

    def run_until(self, time: float) -> None:
        """Run events with timestamps ``<= time``; advance the clock to it.

        The clock ends exactly at ``time`` even if the queue drains earlier,
        so fixed-horizon experiments always cover the same duration.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time}")
        self._guard_reentry()
        self._running = True
        # Inlined peek_time + step: one cancelled-head sweep per event
        # instead of two, and no per-event method dispatch.  Semantics are
        # identical; ``self._queue`` and ``self._seq`` are re-read every
        # iteration because a callback-triggered sweep rebinds the queue and
        # a callback-triggered ``snapshot_state`` rebinds the seq counter.
        heappop = heapq.heappop
        heappush = heapq.heappush
        try:
            while True:
                queue = self._queue
                while queue and queue[0][2].cancelled:
                    heappop(queue)
                if not queue or queue[0][0] > time:
                    break
                _, _, event = heappop(queue)
                self._now = event.time
                self._event_count += 1
                self.current_event = event
                try:
                    event.callback(*event.args)
                finally:
                    self.current_event = None
                if event.period is not None and not event.cancelled:
                    event.time = self._now + event.period
                    heappush(self._queue, (event.time, next(self._seq), event))
        finally:
            self._running = False
        self._now = time

    def add_drain_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback fired after every :meth:`run_epoch` barrier.

        Hooks run *outside* the event loop (the clock has already reached
        the barrier and no callback is executing), in registration order --
        the deterministic point at which a shard host collects the epoch's
        cross-shard messages.
        """
        self._drain_hooks.append(hook)

    def run_epoch(self, end: float) -> None:
        """Run to the epoch barrier ``end``, then fire the drain hooks.

        Identical to :meth:`run_until` (events with timestamps ``<= end``
        fire; the clock lands exactly on ``end``) plus the drain-hook pass.
        Events a hook schedules land in the *next* epoch, which is what
        gives sharded runs their stable total order: nothing a hook emits
        can affect the epoch that just completed.
        """
        self.run_until(end)
        for hook in self._drain_hooks:
            hook()

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        self._guard_reentry()
        self._running = True
        try:
            executed = 0
            while self.step():
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._running = False

    def _guard_reentry(self) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant; already running")

    def _drop_cancelled_head(self) -> None:
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)

    def _sweep_cancelled(self) -> None:
        """Drop cancelled entries when they dominate an oversized queue.

        Deterministic: pop order depends only on the ``(time, seq)`` total
        order, which filtering + heapify preserves.  The threshold doubles
        with the surviving queue so the amortized cost per push is O(1).
        """
        queue = self._queue
        live = [entry for entry in queue if not entry[2].cancelled]
        if len(live) <= len(queue) // 2:
            heapq.heapify(live)
            self._queue = live
        self._sweep_threshold = max(_SWEEP_MIN_SIZE, 2 * len(self._queue))

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Clock, counters, and a queue signature as plain data.

        Callbacks are live closures and cannot be serialized; the queue is
        captured as a verification signature -- ``(time, seq, label,
        cancelled, period)`` per entry in sorted heap order -- so a replayed
        run can prove its event schedule matches the checkpointed one
        bit-for-bit.  ``label`` falls back to the callback's qualified name
        (stable across processes, unlike its ``repr``).
        """
        value = next(self._seq)
        self._seq = itertools.count(value)
        signature = sorted(
            (
                time,
                seq,
                event.label
                or getattr(event.callback, "__qualname__", "?"),
                event.cancelled,
                event.period,
            )
            for time, seq, event in self._queue
        )
        return {
            "v": 1,
            "now": self._now,
            "seq_next": value,
            "event_count": self._event_count,
            "sweep_threshold": self._sweep_threshold,
            "queue": [list(entry) for entry in signature],
        }

    def restore_state(self, state: dict) -> None:
        """Restore clock and counters in place (queue stays as replayed).

        The queue holds live callback closures, so it is reconstructed by
        deterministic replay and verified against the snapshot's signature;
        everything scalar is imposed from the checkpoint.
        """
        if state.get("v") != 1:
            raise ValueError(f"unknown Simulator snapshot version {state.get('v')!r}")
        self._now = state["now"]
        self._seq = itertools.count(state["seq_next"])
        self._event_count = state["event_count"]
        self._sweep_threshold = state["sweep_threshold"]
