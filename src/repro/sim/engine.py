"""Deterministic discrete-event simulation core.

The :class:`Simulator` keeps a priority queue of timestamped callbacks.
Events at equal timestamps fire in scheduling order (FIFO), which makes every
run fully deterministic for a given seed and schedule -- a requirement for
reproducible experiments and for the resumable accounting logic built on top.

Time is measured in simulated **seconds** as a float.  Sub-microsecond
activity (e.g. a container maintenance operation that takes 0.95 us) is
representable without special handling.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised on invalid use of the simulation engine."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: "ScheduledEvent" = field(compare=False)


@dataclass
class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    time: float
    callback: Callable[..., None]
    args: tuple
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time arrives."""
        self.cancelled = True


class Simulator:
    """A discrete-event simulator with a float-seconds virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._event_count

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"non-finite event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = ScheduledEvent(time=time, callback=callback, args=args, label=label)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), event))
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is drained."""
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Execute the next live event.  Returns ``False`` when none remain."""
        self._drop_cancelled_head()
        if not self._queue:
            return False
        entry = heapq.heappop(self._queue)
        self._now = entry.time
        self._event_count += 1
        entry.event.callback(*entry.event.args)
        return True

    def run_until(self, time: float) -> None:
        """Run events with timestamps ``<= time``; advance the clock to it.

        The clock ends exactly at ``time`` even if the queue drains earlier,
        so fixed-horizon experiments always cover the same duration.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time}")
        self._guard_reentry()
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = time

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        self._guard_reentry()
        self._running = True
        try:
            executed = 0
            while self.step():
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._running = False

    def _guard_reentry(self) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant; already running")

    def _drop_cancelled_head(self) -> None:
        while self._queue and self._queue[0].event.cancelled:
            heapq.heappop(self._queue)
