"""Statistics helpers shared by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def relative_error(estimated: float, measured: float) -> float:
    """The paper's validation error: |estimated - measured| / measured."""
    if measured == 0:
        raise ValueError("measured value must be non-zero")
    return abs(estimated - measured) / abs(measured)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values) -> Summary:
    """Summary statistics of a non-empty sample sequence."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def distribution_histogram(
    values, bins: int = 30, value_range: tuple[float, float] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Probability-density histogram (the paper's Fig. 6/7 presentation).

    Returns ``(density, bin_edges)``; densities integrate to 1 so histogram
    heights carry no standalone meaning, exactly as the paper notes.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty sample set")
    density, edges = np.histogram(arr, bins=bins, range=value_range, density=True)
    return density, edges
