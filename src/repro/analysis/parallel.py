"""Deterministic process-pool execution for analysis fan-out.

Sweeps, distribution-policy comparisons, and multi-machine calibration are
embarrassingly parallel: every point builds its own simulator, machine, and
seeded RNG hub, so points share no state and their results depend only on
their arguments.  :func:`parallel_map` exploits that while keeping the two
properties the rest of the toolchain relies on:

* **Determinism** -- results are collected in input order, and each task's
  output is a pure function of its arguments (seeds included), so a parallel
  run is byte-identical to the serial run it replaces.  Worker scheduling
  affects only wall-clock time, never values.
* **Graceful fallback** -- if the platform cannot fork, the pool dies, or
  the task does not pickle, the map silently degrades to the plain serial
  loop.  Task exceptions are *not* swallowed: they propagate exactly as a
  serial loop would raise them.
* **Worker-crash retry** -- when a pool worker dies mid-shard (OOM kill,
  SIGKILL), that shard is retried once from its original input, in input
  order, before anything degrades to serial.  Results stay deterministic
  because every task is a pure function of its arguments; the retry count
  is tracked in the ``parallel_worker_retries_total`` metric
  (:func:`worker_retries_total`, :func:`publish_metrics`).

``REPRO_JOBS`` overrides the worker count (``REPRO_JOBS=1`` forces serial
everywhere -- useful in CI and under profilers).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Shards re-executed after their pool worker crashed (process lifetime).
_worker_retries_total = 0


def worker_retries_total() -> int:
    """How many shards were retried after a worker crash (this process)."""
    return _worker_retries_total


def publish_metrics(registry) -> None:
    """Mirror the retry counter into a :class:`MetricsRegistry`."""
    counter = registry.counter(
        "parallel_worker_retries_total",
        help="pool shards retried after their worker crashed",
    )
    counter.value = float(_worker_retries_total)


def available_cores() -> int:
    """CPU cores usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else all cores."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
        if jobs is None:
            jobs = available_cores()
    return max(1, int(jobs))


def derived_seeds(
    seed: int, n: int, label: str = "point", shard: int | None = None
) -> list[int]:
    """``n`` deterministic 32-bit seeds derived from one experiment seed.

    Stable across platforms and Python hash randomization (sha256-based,
    matching :class:`repro.sim.rng.RngHub`'s stream derivation).  Use one
    per point when points need *independent* randomness; points that must
    replicate a serial baseline should keep the caller's seed unchanged.

    ``shard`` adds a shard id to the derivation domain: two shards of one
    sharded run that both derive per-point seeds under the same label can
    never draw colliding seed sequences (``shard=None`` preserves the
    historical single-namespace derivation byte-for-byte).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    prefix = (
        f"{seed}/{label}" if shard is None else f"{seed}/{label}/shard{shard}"
    )
    seeds = []
    for index in range(n):
        digest = hashlib.sha256(f"{prefix}/{index}".encode()).digest()
        seeds.append(int.from_bytes(digest[:4], "big"))
    return seeds


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    jobs: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items`` with a process pool, results in input order.

    Serial when ``jobs`` resolves to 1, when there is at most one item, or
    when the pool cannot be used (fork unavailable, workers died, task not
    picklable).  ``fn`` and ``items`` must be module-level/picklable for the
    parallel path to engage; anything else falls back cleanly.

    A shard whose worker crashed (``BrokenProcessPool``) is retried once
    from its original input in the parent process -- input order preserved,
    so a transiently killed worker cannot change a sweep's results.
    """
    global _worker_retries_total
    item_list = list(items)
    workers = min(resolve_jobs(jobs), len(item_list))
    if workers <= 1:
        return [fn(item) for item in item_list]
    try:
        # Fail fast (and serially) on unpicklable tasks instead of letting
        # the pool raise after partial execution.
        pickle.dumps(fn)
        pickle.dumps(item_list)
    except Exception:
        return [fn(item) for item in item_list]
    try:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [pool.submit(fn, item) for item in item_list]
            results: list[_R] = []
            for future, item in zip(futures, item_list):
                try:
                    results.append(future.result())
                except BrokenProcessPool:
                    # The worker died mid-shard; the task itself did not
                    # raise.  Re-run this shard from its input.  Task
                    # exceptions still propagate verbatim above.
                    _worker_retries_total += 1
                    results.append(fn(item))
            return results
    except (BrokenProcessPool, OSError, ValueError, ImportError):
        return [fn(item) for item in item_list]


def parallel_starmap(
    fn: Callable[..., _R],
    argument_tuples: Sequence[tuple],
    jobs: int | None = None,
) -> list[_R]:
    """:func:`parallel_map` for functions taking positional arguments."""
    return parallel_map(_StarCall(fn), list(argument_tuples), jobs=jobs)


class _StarCall:
    """Picklable ``lambda args: fn(*args)`` (closures do not pickle)."""

    def __init__(self, fn: Callable[..., _R]) -> None:
        self.fn = fn

    def __call__(self, args: tuple) -> _R:
        return self.fn(*args)
