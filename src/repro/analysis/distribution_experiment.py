"""Fig. 14 / Table 1: the request-distribution experiment, reusable.

A two-machine cluster (SandyBridge + Woodcrest) serves a combined
GAE-Vosao + RSA-crypto workload (50/50 by load) at 95% of the volume the
simple balancer can sustain; each policy's energy rate and per-workload
response times are measured over the steady window.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.parallel import parallel_starmap
from repro.hardware.specs import SANDYBRIDGE, WOODCREST
from repro.server.cluster import HeterogeneousCluster
from repro.server.dispatch import (
    DispatchPolicy,
    Dispatcher,
    MachineHeterogeneityAwarePolicy,
    SimpleLoadBalancePolicy,
    WorkloadHeterogeneityAwarePolicy,
)
from repro.sim.rng import RngHub
from repro.workloads.gae import GaeVosaoWorkload
from repro.workloads.rsa import RsaCryptoWorkload

#: The three policies of Section 4.4, as (name, factory) pairs.
DISTRIBUTION_POLICIES: tuple[tuple[str, Callable[[], DispatchPolicy]], ...] = (
    ("simple load balance", SimpleLoadBalancePolicy),
    ("machine heterogeneity-aware",
     lambda: MachineHeterogeneityAwarePolicy("sandybridge", "woodcrest")),
    ("workload heterogeneity-aware",
     lambda: WorkloadHeterogeneityAwarePolicy("sandybridge", "woodcrest")),
)


def run_distribution_policy(
    policy: DispatchPolicy,
    calibrations: dict,
    duration: float = 10.0,
    warmup: float = 2.0,
    rate_scale: float = 0.95,
    seed: int = 7,
) -> dict:
    """Run one policy; returns energy rates, response times, dispatch counts."""
    cluster = HeterogeneousCluster()
    sb = cluster.add_machine(SANDYBRIDGE, calibrations["sandybridge"])
    wc = cluster.add_machine(WOODCREST, calibrations["woodcrest"])
    vosao, rsa = GaeVosaoWorkload(), RsaCryptoWorkload()
    cluster.build_workload(vosao)
    cluster.build_workload(rsa)

    # 50/50 *load* composition: request-count shares inversely weighted by
    # per-request demand.
    demand_vosao = vosao.mean_demand_seconds("sandybridge")
    demand_rsa = rsa.mean_demand_seconds("sandybridge")
    share_vosao = demand_rsa / (demand_vosao + demand_rsa)
    share_rsa = demand_vosao / (demand_vosao + demand_rsa)
    # Offered volume relative to the maximum the simple balancer sustains
    # (Woodcrest saturates first under an even split).
    mean_demand_wc = (
        share_vosao * vosao.mean_demand_seconds("woodcrest")
        + share_rsa * rsa.mean_demand_seconds("woodcrest")
    )
    rate = rate_scale * 2 * WOODCREST.n_cores / mean_demand_wc

    dispatcher = Dispatcher(
        cluster, [(vosao, share_vosao), (rsa, share_rsa)], policy, rate,
        RngHub(seed).stream("arrivals"),
    )
    dispatcher.start(duration)
    cluster.simulator.run_until(warmup)
    cluster.mark_energy()
    cluster.simulator.run_until(duration)
    for member in cluster.machines:
        member.facility.flush()
    window = duration - warmup
    return {
        "sb_watts": sb.active_joules_since_mark() / window,
        "wc_watts": wc.active_joules_since_mark() / window,
        "rt_vosao": dispatcher.mean_response_time("gae-vosao", since=warmup),
        "rt_rsa": dispatcher.mean_response_time("rsa-crypto", since=warmup),
        "dispatched": dict(dispatcher.dispatched_to),
    }


def _run_policy_by_index(index: int, calibrations: dict, kwargs: dict) -> dict:
    """Worker for the policy fan-out.

    Policies are identified by their index in :data:`DISTRIBUTION_POLICIES`
    because the policy *factories* are lambdas (not picklable); the index
    plus this module-level function is.
    """
    _name, factory = DISTRIBUTION_POLICIES[index]
    return run_distribution_policy(factory(), calibrations, **kwargs)


def run_all_distribution_policies(
    calibrations: dict, jobs: int | None = None, **kwargs
) -> dict:
    """Run all three Section 4.4 policies; returns name -> result dict.

    Each policy's cluster simulation is independent, so the three run in
    parallel worker processes (``jobs``); results are keyed and ordered as
    in :data:`DISTRIBUTION_POLICIES` regardless of completion order.
    """
    results = parallel_starmap(
        _run_policy_by_index,
        [(i, calibrations, kwargs) for i in range(len(DISTRIBUTION_POLICIES))],
        jobs=jobs,
    )
    return {
        name: result
        for (name, _factory), result in zip(DISTRIBUTION_POLICIES, results)
    }
