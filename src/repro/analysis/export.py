"""Exporting experiment data to CSV/JSON for downstream analysis.

Benchmarks print paper-style tables; users who want to plot or post-process
need the raw series.  This module writes:

* per-request records of a run (type, timing, energy, power, duty);
* the facility's model power trace and a meter's sample series;
* generic row tables (what :func:`~repro.analysis.reporting.render_table`
  prints) as CSV.

Only stdlib ``csv``/``json`` are used, so exports work anywhere the library
does.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.requests import RequestResult


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> Path:
    """Write a generic row table as CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def request_records(
    results: Iterable[RequestResult], approach: str = "recal"
) -> list[dict[str, Any]]:
    """Flatten completed requests into plain dict records."""
    records = []
    for result in results:
        stats = result.container.stats
        records.append({
            "request_id": result.request_id,
            "rtype": result.rtype,
            "arrival": result.arrival,
            "completion": result.completion,
            "response_time": result.response_time,
            "cpu_seconds": stats.cpu_seconds,
            "energy_joules": result.energy(approach),
            "io_energy_joules": stats.io_energy_joules,
            "mean_power_watts": result.mean_power(approach),
            "mean_duty_ratio": stats.mean_duty_ratio,
        })
    return records


def export_requests_csv(
    path: str | Path,
    results: Iterable[RequestResult],
    approach: str = "recal",
) -> Path:
    """Write per-request records as CSV."""
    records = request_records(results, approach)
    if not records:
        raise ValueError("no completed requests to export")
    headers = list(records[0].keys())
    return write_csv(path, headers, ([r[h] for h in headers] for r in records))


def export_requests_json(
    path: str | Path,
    results: Iterable[RequestResult],
    approach: str = "recal",
) -> Path:
    """Write per-request records as a JSON array."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(request_records(results, approach), indent=2))
    return path


def export_power_traces_csv(path: str | Path, facility, meter=None) -> Path:
    """Write the model trace (and optionally aligned meter samples) as CSV.

    Columns: interval-end time, modelled active watts, and -- when a meter
    is given -- the measured watts of the sample with the same interval end
    (blank where none exists).
    """
    times, watts = facility.model_trace_series()
    measured_by_end = {}
    if meter is not None:
        for sample in meter.all_samples:
            measured_by_end[round(sample.interval_end, 9)] = sample.watts
    rows = []
    for t, w in zip(times, watts):
        measured = measured_by_end.get(round(float(t), 9), "")
        rows.append([float(t), float(w), measured])
    return write_csv(path, ["time", "modeled_watts", "measured_watts"], rows)
