"""Fig. 8 validation: summed request energy vs. measured system power.

Direct per-request power measurement is impossible (Section 4.2), so the
paper validates indirectly: profile the energy of *all* request executions
(plus the background container) over a window, divide by the window length,
and compare with the measured system active power.  The error is computed
independently for each accounting approach evaluated in parallel, so one
run yields the approach #1 / #2 / #3 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import relative_error
from repro.core.calibration import CalibrationResult
from repro.hardware.specs import MachineSpec
from repro.workloads.base import Workload, WorkloadRun, run_workload


@dataclass
class ValidationOutcome:
    """Validation numbers for one (workload, machine, load) point."""

    workload: str
    machine: str
    load_fraction: float
    measured_active_watts: float
    estimated_watts: dict[str, float]
    errors: dict[str, float]
    run: WorkloadRun

    def error(self, approach: str) -> float:
        """Relative validation error of one approach."""
        return self.errors[approach]


def validate_workload(
    workload: Workload,
    spec: MachineSpec,
    calibration: CalibrationResult,
    load_fraction: float,
    duration: float = 8.0,
    seed: int = 0,
    with_meter: bool = True,
) -> ValidationOutcome:
    """Run one workload and compute per-approach validation errors.

    The whole run is the validation window (the paper's "given time
    duration"), so energy attributed to requests straddling the window
    boundary is negligible relative to the window.
    """
    run = run_workload(
        workload,
        spec,
        calibration,
        load_fraction=load_fraction,
        duration=duration,
        warmup=0.0,
        seed=seed,
        with_meter=with_meter,
    )
    measured_watts = run.measured_active_joules / duration
    estimated = {}
    errors = {}
    for approach in run.facility.models:
        joules = run.facility.registry.total_energy(approach)
        watts = joules / duration
        estimated[approach] = watts
        errors[approach] = relative_error(watts, measured_watts)
    return ValidationOutcome(
        workload=workload.name,
        machine=spec.name,
        load_fraction=load_fraction,
        measured_active_watts=measured_watts,
        estimated_watts=estimated,
        errors=errors,
        run=run,
    )
