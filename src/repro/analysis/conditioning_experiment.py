"""Fig. 11/12: fair power conditioning of GAE with power viruses.

Reproduces the paper's scenario: GAE-Vosao fully utilizes the SandyBridge
machine; midway through, power viruses start arriving sporadically (about
one per second, each occupying a core for ~100 ms), producing visible power
spikes.  With container-based conditioning enabled, the facility throttles
only the virus containers (per-request duty-cycle modulation), keeping the
package power at or below the target while normal requests run at almost
full speed.

The paper's target is 40 W of system active power on its SandyBridge.  Our
calibrated machine draws about 51 W for GAE-Vosao at peak (a normal request
occupies at least ~12.7 W while scheduled, core floor plus chip share), so
the equivalent target here is 52 W -- a 13 W per-core budget that normal
requests just fit, as the paper's 10 W budget fit Vosao.  The shape (spikes
capped at the target, viruses throttled ~1/3, normal requests near full
speed) is what is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import CalibrationResult
from repro.core.conditioning import PowerConditioner
from repro.hardware.specs import MachineSpec
from repro.requests import RequestSpec
from repro.workloads.base import WorkloadRun
from repro.workloads.gae import GaeHybridWorkload


@dataclass
class RequestThrottleSample:
    """One Fig. 12 scatter point."""

    rtype: str
    original_power_watts: float
    mean_duty_ratio: float


@dataclass
class ConditioningOutcome:
    """Everything the Fig. 11/12 benchmarks report."""

    conditioned: bool
    target_active_watts: float
    virus_start: float
    #: (interval-end time, package active watts) series from the meter.
    power_trace: list[tuple[float, float]]
    scatter: list[RequestThrottleSample]
    run: WorkloadRun = field(repr=False)

    def mean_power(self, start: float, end: float) -> float:
        """Mean measured package active power over a window."""
        values = [w for t, w in self.power_trace if start < t <= end]
        return float(np.mean(values)) if values else 0.0

    def peak_power(self, start: float, end: float) -> float:
        """Near-peak (99th percentile) power over a window, robust to the
        meter's single-sample noise."""
        values = [w for t, w in self.power_trace if start < t <= end]
        return float(np.percentile(values, 99)) if values else 0.0

    def mean_duty(self, rtype_filter) -> float:
        """Average duty ratio over requests matching a type predicate."""
        pool = [s.mean_duty_ratio for s in self.scatter if rtype_filter(s.rtype)]
        return float(np.mean(pool)) if pool else 1.0


def run_conditioning_experiment(
    spec: MachineSpec,
    calibration: CalibrationResult,
    conditioned: bool,
    target_active_watts: float = 52.0,
    duration: float = 16.0,
    virus_start: float = 8.0,
    virus_rate_hz: float = 1.0,
    seed: int = 0,
) -> ConditioningOutcome:
    """Run GAE-Vosao at peak load with sporadic power viruses.

    The hybrid server knows how to execute virus requests; a zero virus
    share makes the driver's own arrivals pure Vosao, and the experiment
    injects the sporadic viruses explicitly.
    """
    workload = GaeHybridWorkload(virus_load_share=1e-6)
    return _run_with_viruses(
        workload, spec, calibration, conditioned, target_active_watts,
        duration, virus_start, virus_rate_hz, seed,
    )


def _run_with_viruses(
    workload, spec, calibration, conditioned, target, duration,
    virus_start, virus_rate_hz, seed,
) -> ConditioningOutcome:
    from repro.core.facility import PowerContainerFacility
    from repro.hardware.specs import build_machine
    from repro.kernel import Kernel
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngHub
    from repro.workloads.base import OpenLoopDriver, meter_setup_for, WorkloadRun

    sim = Simulator()
    machine = build_machine(spec, sim)
    kernel = Kernel(machine, sim)
    kwargs = meter_setup_for(spec, calibration, machine, sim)
    facility = PowerContainerFacility(kernel, calibration, **kwargs)
    if conditioned:
        facility.attach_conditioner(
            PowerConditioner(kernel, target_active_watts=target)
        )
    facility.start_tracing()

    hub = RngHub(seed)
    server = workload.build_server(kernel, facility)
    driver = OpenLoopDriver(
        kernel, facility, workload, server,
        load_fraction=1.0, rng=hub.stream("arrivals"),
    )
    driver.start(duration)

    virus_rng = hub.stream("viruses")
    t = virus_start
    while t < duration:
        sim.schedule_at(
            t,
            driver.inject_request,
            RequestSpec("virus", params={"jitter": 1.0}),
        )
        t += float(virus_rng.exponential(1.0 / virus_rate_hz))

    sim.run_until(duration)
    facility.flush()
    machine.checkpoint()

    meter_idle = kwargs["meter_idle_watts"]
    trace = [
        (s.interval_end, s.watts - meter_idle)
        for s in kwargs["meter"].all_samples
    ]
    scatter = []
    for result in driver.results:
        stats = result.container.stats
        if stats.cpu_seconds <= 0:
            continue
        scatter.append(
            RequestThrottleSample(
                rtype=result.rtype,
                original_power_watts=result.container.full_speed_power_ewma,
                mean_duty_ratio=stats.mean_duty_ratio,
            )
        )
    run = WorkloadRun(
        workload=workload, machine=machine, kernel=kernel, facility=facility,
        driver=driver, duration=duration, measure_start=0.0,
        measured_active_joules=machine.integrator.active_joules,
    )
    return ConditioningOutcome(
        conditioned=conditioned,
        target_active_watts=target,
        virus_start=virus_start,
        power_trace=trace,
        scatter=scatter,
        run=run,
    )
