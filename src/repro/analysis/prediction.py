"""Fig. 10: predicting power at new request compositions.

The validation of Fig. 8 shows measured energy is fully attributed, but not
that it is attributed to the *right* requests.  The paper closes that gap by
prediction: learn per-request-type energy profiles from a running system,
then predict whole-system power under a hypothetical composition (different
type mix, different rates) and compare against an actual run of that
composition.  Accurate prediction implies accurate per-request attribution.

Three predictors are compared:

* **power containers** -- per-type energy profiles from our facility;
* **CPU-utilization-proportional** -- assumes active power scales with CPU
  utilization (requires per-request CPU profiling, e.g. resource
  containers, but ignores per-cycle power differences between types);
* **request-rate-proportional** -- assumes every request contributes the
  same energy, so power scales with request rate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import relative_error
from repro.core.calibration import CalibrationResult
from repro.hardware.specs import MachineSpec
from repro.workloads.base import Workload, run_workload


@dataclass
class TypeProfile:
    """Learned per-request-type resource profile."""

    mean_energy_joules: float
    mean_cpu_seconds: float
    sample_count: int


@dataclass
class PredictionOutcome:
    """Prediction accuracy at one new-composition load level."""

    load_fraction: float
    measured_active_watts: float
    predictions: dict[str, float]
    errors: dict[str, float]


def learn_type_profiles(run, approach: str) -> dict[str, TypeProfile]:
    """Per-type mean energy/CPU profiles from a profiling run."""
    energy: dict[str, list[float]] = defaultdict(list)
    cpu: dict[str, list[float]] = defaultdict(list)
    for result in run.driver.results:
        energy[result.rtype].append(result.container.total_energy(approach))
        cpu[result.rtype].append(result.container.stats.cpu_seconds)
    return {
        rtype: TypeProfile(
            mean_energy_joules=float(np.mean(energy[rtype])),
            mean_cpu_seconds=float(np.mean(cpu[rtype])),
            sample_count=len(energy[rtype]),
        )
        for rtype in energy
    }


def predict_at_new_composition(
    original_workload: Workload,
    new_workload: Workload,
    spec: MachineSpec,
    calibration: CalibrationResult,
    profiling_load: float = 0.5,
    new_loads: tuple[float, ...] = (0.5, 0.65, 0.8),
    duration: float = 8.0,
    seed: int = 0,
) -> list[PredictionOutcome]:
    """Learn profiles on the original workload, predict the new one."""
    original = run_workload(
        original_workload, spec, calibration,
        load_fraction=profiling_load, duration=duration, warmup=0.0, seed=seed,
    )
    approach = original.facility.primary
    profiles = learn_type_profiles(original, approach)

    n_cores = spec.n_cores
    orig_watts = original.measured_active_joules / duration
    orig_rate = original.driver.completed / duration
    background = original.facility.registry.background
    bg_watts = background.total_energy(approach) / duration
    bg_cpu_per_sec = background.stats.cpu_seconds / duration
    total_cpu = sum(
        c.stats.cpu_seconds
        for c in original.facility.registry.all_containers()
    )
    orig_utilization = total_cpu / (n_cores * duration)

    outcomes = []
    for load in new_loads:
        new_run = run_workload(
            new_workload, spec, calibration,
            load_fraction=load, duration=duration, warmup=0.0, seed=seed + 1,
        )
        measured = new_run.measured_active_joules / duration
        completed = new_run.driver.results
        new_rate = len(completed) / duration

        # Power containers: per-type energy profiles.
        unknown_types = {r.rtype for r in completed} - set(profiles)
        if unknown_types:
            raise ValueError(
                f"new composition contains unprofiled types: {unknown_types}"
            )
        container_pred = bg_watts + sum(
            profiles[r.rtype].mean_energy_joules for r in completed
        ) / duration

        # CPU-utilization-proportional: predict utilization from per-type
        # CPU profiles, scale original power by the utilization ratio.
        predicted_cpu = (
            sum(profiles[r.rtype].mean_cpu_seconds for r in completed)
            / duration
            + bg_cpu_per_sec
        )
        predicted_utilization = predicted_cpu / n_cores
        util_pred = orig_watts * predicted_utilization / orig_utilization

        # Request-rate-proportional.
        rate_pred = orig_watts * new_rate / orig_rate

        predictions = {
            "power-containers": container_pred,
            "cpu-utilization-proportional": util_pred,
            "request-rate-proportional": rate_pred,
        }
        outcomes.append(
            PredictionOutcome(
                load_fraction=load,
                measured_active_watts=measured,
                predictions=predictions,
                errors={
                    name: relative_error(value, measured)
                    for name, value in predictions.items()
                },
            )
        )
    return outcomes
