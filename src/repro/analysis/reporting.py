"""Plain-text rendering of paper-style tables."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned text table (used by benchmark output)."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
