"""Parameter sweeps: load curves and machine comparisons.

The paper reports point measurements (peak/half load); operators planning
capacity want the whole curve.  :func:`load_sweep` runs a workload across
load levels on one machine and collects power, latency, and validation
error per level; :func:`machine_sweep` fixes the load and varies the
machine model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.parallel import parallel_starmap
from repro.core.calibration import CalibrationResult
from repro.hardware.specs import MachineSpec
from repro.workloads.base import Workload, run_workload


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample."""

    machine: str
    load_fraction: float
    measured_active_watts: float
    mean_response_time: float
    p95_response_time: float
    completed: int
    validation_error: float
    energy_per_request: float


def _run_point(
    workload: Workload,
    spec: MachineSpec,
    calibration: CalibrationResult,
    load: float,
    duration: float,
    seed: int,
) -> SweepPoint:
    run = run_workload(
        workload, spec, calibration,
        load_fraction=load, duration=duration, warmup=0.0, seed=seed,
    )
    results = run.driver.results
    latencies = [r.response_time for r in results] or [0.0]
    energies = [
        r.energy(run.facility.primary) for r in results
        if r.container.stats.cpu_seconds > 0
    ] or [0.0]
    measured = run.measured_active_joules / duration
    estimated = run.facility.registry.total_energy(run.facility.primary) / duration
    error = abs(estimated - measured) / measured if measured > 0 else 0.0
    return SweepPoint(
        machine=spec.name,
        load_fraction=load,
        measured_active_watts=measured,
        mean_response_time=float(np.mean(latencies)),
        p95_response_time=float(np.percentile(latencies, 95)),
        completed=len(results),
        validation_error=error,
        energy_per_request=float(np.mean(energies)),
    )


def load_sweep(
    workload: Workload,
    spec: MachineSpec,
    calibration: CalibrationResult,
    loads: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    duration: float = 4.0,
    seed: int = 0,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """Sweep the offered load on one machine.

    Points are independent seeded simulations, so they fan out across a
    process pool (``jobs`` workers; see :mod:`repro.analysis.parallel`).
    Results are identical to the serial loop for any worker count.
    """
    if not loads:
        raise ValueError("need at least one load level")
    return parallel_starmap(
        _run_point,
        [(workload, spec, calibration, load, duration, seed) for load in loads],
        jobs=jobs,
    )


def machine_sweep(
    workload: Workload,
    specs_with_calibrations: list[tuple[MachineSpec, CalibrationResult]],
    load: float = 1.0,
    duration: float = 4.0,
    seed: int = 0,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """Run one workload at a fixed load across machine models (in parallel)."""
    if not specs_with_calibrations:
        raise ValueError("need at least one machine")
    return parallel_starmap(
        _run_point,
        [
            (workload, spec, calibration, load, duration, seed)
            for spec, calibration in specs_with_calibrations
        ],
        jobs=jobs,
    )
