"""Experiment drivers and statistics for the paper's tables and figures."""

from repro.analysis.stats import (
    distribution_histogram,
    relative_error,
    summarize,
)
from repro.analysis.validation import ValidationOutcome, validate_workload
from repro.analysis.prediction import (
    PredictionOutcome,
    predict_at_new_composition,
)
from repro.analysis.experiments import (
    incremental_power_curve,
    measure_workload_power,
    request_power_samples,
    request_energy_samples,
    gae_background_split,
)
from repro.analysis.reporting import render_table
from repro.analysis.conditioning_experiment import (
    ConditioningOutcome,
    run_conditioning_experiment,
)
from repro.analysis.export import (
    export_power_traces_csv,
    export_requests_csv,
    export_requests_json,
    request_records,
    write_csv,
)
from repro.analysis.sweeps import SweepPoint, load_sweep, machine_sweep
from repro.analysis.distribution_experiment import run_all_distribution_policies
from repro.analysis.parallel import (
    available_cores,
    derived_seeds,
    parallel_map,
    parallel_starmap,
    resolve_jobs,
)

__all__ = [
    "distribution_histogram",
    "relative_error",
    "summarize",
    "ValidationOutcome",
    "validate_workload",
    "PredictionOutcome",
    "predict_at_new_composition",
    "incremental_power_curve",
    "measure_workload_power",
    "request_power_samples",
    "request_energy_samples",
    "gae_background_split",
    "render_table",
    "ConditioningOutcome",
    "run_conditioning_experiment",
    "export_power_traces_csv",
    "export_requests_csv",
    "export_requests_json",
    "request_records",
    "write_csv",
    "SweepPoint",
    "load_sweep",
    "machine_sweep",
    "run_all_distribution_policies",
    "available_cores",
    "derived_seeds",
    "parallel_map",
    "parallel_starmap",
    "resolve_jobs",
]
