"""Shared experiment drivers for the paper's figures.

These helpers run the simulated system in the configurations the paper's
evaluation uses and extract the plotted quantities.  Benchmarks under
``benchmarks/`` call them and print paper-style rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import CalibrationResult
from repro.hardware.events import RateProfile
from repro.hardware.specs import MachineSpec, build_machine
from repro.kernel import Compute, Kernel
from repro.sim.engine import Simulator
from repro.workloads.base import Workload, WorkloadRun, run_workload

#: The Fig. 1 microbenchmark: a perfectly scaling CPU spinner.
SPIN_PROFILE = RateProfile(name="fig1-spin", ipc=1.0)


def incremental_power_curve(
    spec: MachineSpec, duration: float = 0.3
) -> list[float]:
    """Fig. 1: incremental active power from idle to k busy cores.

    Returns the power *increments* ``[idle->1, 1->2, ..., (n-1)->n]`` under
    the OS's spread-first placement policy (unpinned spinners).
    """
    levels = []
    for k in range(spec.n_cores + 1):
        sim = Simulator()
        machine = build_machine(spec, sim)
        kernel = Kernel(machine, sim)
        for i in range(k):

            def spinner():
                while True:
                    yield Compute(
                        cycles=machine.freq_hz * 0.05, profile=SPIN_PROFILE
                    )

            kernel.spawn(spinner(), f"spin{i}")
        sim.run_until(duration)
        machine.checkpoint()
        levels.append(machine.integrator.active_joules / duration)
    return [levels[k + 1] - levels[k] for k in range(spec.n_cores)]


def measure_workload_power(
    workload: Workload,
    spec: MachineSpec,
    calibration: CalibrationResult,
    load_fraction: float,
    duration: float = 6.0,
    seed: int = 0,
) -> tuple[float, WorkloadRun]:
    """Fig. 5: measured active power of a workload at one load level."""
    run = run_workload(
        workload, spec, calibration,
        load_fraction=load_fraction, duration=duration, warmup=0.0, seed=seed,
    )
    return run.measured_active_joules / duration, run


def request_power_samples(run: WorkloadRun, rtype_prefix: str = "") -> list[float]:
    """Fig. 6: per-request mean power samples (lifetime-averaged)."""
    return [
        r.mean_power(run.facility.primary)
        for r in run.driver.results
        if r.rtype.startswith(rtype_prefix) and r.container.stats.cpu_seconds > 0
    ]


def request_energy_samples(run: WorkloadRun, rtype_prefix: str = "") -> list[float]:
    """Fig. 7: per-request energy samples."""
    return [
        r.energy(run.facility.primary)
        for r in run.driver.results
        if r.rtype.startswith(rtype_prefix) and r.container.stats.cpu_seconds > 0
    ]


@dataclass
class BackgroundSplit:
    """Fig. 9: background vs. request power decomposition."""

    measured_active_watts: float
    modeled_request_watts: float
    modeled_background_watts: float

    @property
    def modeled_total_watts(self) -> float:
        """Sum of request and background modelled power."""
        return self.modeled_request_watts + self.modeled_background_watts

    @property
    def background_fraction(self) -> float:
        """Share of modelled active power due to background processing."""
        total = self.modeled_total_watts
        return self.modeled_background_watts / total if total > 0 else 0.0


def gae_background_split(run: WorkloadRun) -> BackgroundSplit:
    """Decompose a GAE run's modelled power into requests vs background."""
    approach = run.facility.primary
    duration = run.duration
    background = run.facility.registry.background.total_energy(approach)
    requests = sum(
        c.total_energy(approach)
        for c in run.facility.registry.request_containers()
    )
    return BackgroundSplit(
        measured_active_watts=run.measured_active_joules / duration,
        modeled_request_watts=requests / duration,
        modeled_background_watts=background / duration,
    )
