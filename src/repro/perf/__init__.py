"""Performance-regression harness: micro/macro benchmarks + BENCH_perf.json.

Run with ``python -m repro perf``; see :mod:`repro.perf.suite` and
``docs/performance.md``.
"""

from repro.perf.suite import (
    BenchResult,
    PRE_PR_SECONDS,
    check_regressions,
    load_bench_json,
    run_suite,
    write_bench_json,
)

__all__ = [
    "BenchResult",
    "PRE_PR_SECONDS",
    "check_regressions",
    "load_bench_json",
    "run_suite",
    "write_bench_json",
]
