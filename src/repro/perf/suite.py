"""The benchmark suite behind ``python -m repro perf``.

Two kinds of benchmarks guard the attribution stack's speed:

* **micro** -- isolated hot kernels (event-vector math, ``active_power``,
  the simulator queue, ``correlation_curve``), each timed over enough
  iterations that per-call overhead dominates noise;
* **macro** -- one end-to-end seeded Solr workload run, the same shape the
  determinism gate replays, timing the whole simulator -> accounting ->
  tracing pipeline.

Results are emitted as ``BENCH_perf.json``.  The committed copy at the repo
root records, per benchmark: the wall time measured when the file was last
regenerated (``seconds``), derived throughput (events/sec, samples/sec),
and -- for the two benchmarks that existed before the optimization PR --
the pre-optimization wall time (``pre_pr_seconds``) measured with the same
methodology on the same machine, so the speedup is an apples-to-apples
ratio inside one file.

:func:`check_regressions` is the CI contract (the ``perf`` lane): a fresh
run must stay under ``threshold`` x the committed wall times, and the
machine-independent ratio between the vectorized ``correlation_curve`` and
its loop oracle must hold.  Wall-clock comparisons against a committed file
are inherently machine-relative, hence the generous default threshold; the
ratio check has no such dependence.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

#: Wall times measured immediately before the optimization PR, with the
#: exact methodology of the corresponding benchmark below, committed so the
#: speedup claims stay auditable.  Do not update these when regenerating
#: baselines -- they are the historical reference point.
PRE_PR_SECONDS = {
    "macro-solr-workload": 0.8485575700005938,
    "micro-correlation-curve": 0.005122571666712854,
}

#: CI regression threshold: fresh wall time may be at most this multiple of
#: the committed wall time (absorbs machine and load variance).
DEFAULT_THRESHOLD = 3.0

#: Minimum required speed ratio of the vectorized ``correlation_curve``
#: over the loop oracle (machine-independent; measured ~27x).
MIN_CORRELATION_RATIO = 5.0

#: Maximum wall-time ratio of a run with an attached-but-disabled
#: :class:`~repro.telemetry.Telemetry` handle over a bare run.  The
#: disabled-mode guards (``if t is not None and t.enabled``) on every hot
#: path must stay within this budget (machine-independent; measured ~1.0).
MAX_TELEMETRY_DISABLED_RATIO = 1.05


@dataclass
class BenchResult:
    """One benchmark's timing plus derived throughput numbers."""

    name: str
    kind: str  # "micro" or "macro"
    seconds: float
    throughput: dict[str, float] = field(default_factory=dict)


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# Macro benchmark
# ---------------------------------------------------------------------------
def bench_macro_solr() -> BenchResult:
    """End-to-end seeded Solr run, best of 3 (calibration excluded, like
    the pre-PR measurement): simulator + kernel + accounting + tracing."""
    from repro.core import calibrate_machine
    from repro.hardware import SANDYBRIDGE
    from repro.workloads import SolrWorkload, run_workload

    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1)

    run = None
    seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run = run_workload(
            SolrWorkload(), SANDYBRIDGE, calibration,
            load_fraction=0.6, duration=1.5, warmup=0.2, seed=7,
        )
        seconds = min(seconds, time.perf_counter() - start)
    events = run.facility.simulator.events_processed
    requests = len(run.driver.results)
    return BenchResult(
        "macro-solr-workload", "macro", seconds,
        throughput={
            "events_per_sec": events / seconds,
            "requests_per_sec": requests / seconds,
        },
    )


# ---------------------------------------------------------------------------
# Micro benchmarks
# ---------------------------------------------------------------------------
def bench_correlation_curve() -> BenchResult:
    """Eq. 4 delay search at recalibration scale (4000-sample series,
    1500-sample delay window) -- the pre-PR measurement's exact shape."""
    from repro.core.alignment import correlation_curve

    rng = np.random.default_rng(0)
    measured = rng.normal(50, 5, 4000)
    modeled = rng.normal(50, 5, 4000)
    correlation_curve(measured, modeled, 1500)  # warm numpy's FFT setup

    start = time.perf_counter()
    for _ in range(3):
        correlation_curve(measured, modeled, 1500)
    seconds = (time.perf_counter() - start) / 3
    return BenchResult(
        "micro-correlation-curve", "micro", seconds,
        throughput={"delays_per_sec": 1501 / seconds},
    )


def bench_correlation_ratio() -> BenchResult:
    """Loop oracle vs vectorized curve on the same inputs.  The ``seconds``
    field holds the *ratio* (machine-independent), not a wall time."""
    from repro.core.alignment import correlation_curve, correlation_curve_reference

    rng = np.random.default_rng(0)
    measured = rng.normal(50, 5, 4000)
    modeled = rng.normal(50, 5, 4000)
    correlation_curve(measured, modeled, 1500)

    vectorized = _best_of(lambda: correlation_curve(measured, modeled, 1500))
    reference = _best_of(
        lambda: correlation_curve_reference(measured, modeled, 1500), repeats=1
    )
    return BenchResult(
        "micro-correlation-vs-oracle-ratio", "micro", reference / vectorized,
        throughput={
            "vectorized_seconds": vectorized,
            "reference_seconds": reference,
        },
    )


def bench_telemetry_overhead() -> BenchResult:
    """Disabled-telemetry tax on the hottest instrumented path.

    Times ``CoreAccountant.sample`` -- the per-context-switch/overflow
    accounting step that runs orders of magnitude more often than any
    other instrumented site -- on an occupied core, with no telemetry vs
    an attached-but-disabled :class:`~repro.telemetry.Telemetry` handle.
    The ``seconds`` field holds the *ratio* (machine-independent, ~1.0),
    guarding the documented <=5% disabled-mode budget.
    """
    from repro.core import PowerContainerFacility, calibrate_machine
    from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
    from repro.kernel import Compute, Kernel
    from repro.sim import Simulator
    from repro.telemetry import Telemetry

    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1)
    spin = RateProfile(name="bench-spin", ipc=1.0)
    iterations = 10_000

    def build_accountant(telemetry):
        sim = Simulator()
        machine = build_machine(SANDYBRIDGE, sim)
        kernel = Kernel(machine, sim)
        facility = PowerContainerFacility(
            kernel, calibration, telemetry=telemetry
        )
        container = facility.create_request_container("bench")

        def program():
            yield Compute(cycles=machine.freq_hz * 60.0, profile=spin)

        kernel.spawn(
            program(), "spin", container_id=container.id, pinned_core=0
        )
        sim.run_until(1e-3)  # dispatch the process so core 0 is occupied
        return facility.accountants[0]

    def arm_seconds(telemetry):
        accountant = build_accountant(telemetry)
        assert accountant.occupied
        now = 1e-3
        start = time.perf_counter()
        for _ in range(iterations):
            now += 1e-4
            accountant.sample(now)
        return time.perf_counter() - start

    arm_seconds(None)  # warm imports and caches
    # Interleave the arms and keep each arm's minimum: back-to-back pairs
    # cancel machine-load drift that separated best-of runs cannot, which
    # matters when the budget is a few percent.
    bare = float("inf")
    disabled = float("inf")
    for _ in range(8):
        bare = min(bare, arm_seconds(None))
        disabled = min(disabled, arm_seconds(Telemetry(enabled=False)))
    return BenchResult(
        "micro-telemetry-disabled-ratio", "micro", disabled / bare,
        throughput={
            "bare_samples_per_sec": iterations / bare,
            "disabled_samples_per_sec": iterations / disabled,
        },
    )


def bench_event_vector() -> BenchResult:
    """Slot-backed EventVector arithmetic: add/subtract/scaled round trips."""
    from repro.hardware.events import EventVector

    iterations = 20_000
    a = EventVector(1e6, 2e6, 3e4, 4e3, 5e2, 10.0, 11.0)
    b = EventVector(5e5, 1e6, 1e4, 2e3, 2e2, 3.0, 4.0)

    def body():
        acc = EventVector()
        for _ in range(iterations):
            acc.add(a)
            acc.subtract(b)
            a.scaled(2.0)

    seconds = _best_of(body)
    ops = iterations * 3
    return BenchResult(
        "micro-event-vector", "micro", seconds,
        throughput={"ops_per_sec": ops / seconds},
    )


def bench_active_power() -> BenchResult:
    """Per-sample model evaluation: the Eq. 1/2 inner product."""
    from repro.core.model import FEATURES_EQ2, MetricSample, PowerModel

    model = PowerModel(
        features=FEATURES_EQ2,
        coefficients=np.array([20.0, 4.0, 6.0, 9.0, 14.0, 11.0]),
        idle_watts=80.0,
    )
    sample = MetricSample(
        mcore=0.8, mins=1.2, mfloat=0.1, mcache=0.02, mmem=0.01,
        mchipshare=0.5,
    )
    iterations = 50_000

    def body():
        for _ in range(iterations):
            model.active_power(sample)

    seconds = _best_of(body)
    return BenchResult(
        "micro-active-power", "micro", seconds,
        throughput={"samples_per_sec": iterations / seconds},
    )


def bench_simulator_queue() -> BenchResult:
    """Event queue churn: one-shot scheduling plus a recurring tick."""
    from repro.sim.engine import Simulator

    def body():
        sim = Simulator()
        counter = [0]

        def bump():
            counter[0] += 1

        sim.schedule_recurring(1e-4, bump, label="tick")
        for i in range(10_000):
            sim.schedule(1e-6 * (i + 1), bump, label="one-shot")
        sim.run_until(1.0)

    seconds = _best_of(body)
    # 10k one-shots + 10k recurring firings per run.
    return BenchResult(
        "micro-simulator-queue", "micro", seconds,
        throughput={"events_per_sec": 20_000 / seconds},
    )


#: All benchmarks, run in this order.
SUITE = (
    bench_event_vector,
    bench_active_power,
    bench_simulator_queue,
    bench_correlation_curve,
    bench_correlation_ratio,
    bench_telemetry_overhead,
    bench_macro_solr,
)


def run_suite() -> dict[str, BenchResult]:
    """Run every benchmark; returns ``{name: BenchResult}`` in suite order."""
    results = {}
    for bench in SUITE:
        result = bench()
        results[result.name] = result
    return results


# ---------------------------------------------------------------------------
# BENCH_perf.json I/O and the CI regression contract
# ---------------------------------------------------------------------------
def write_bench_json(results: dict[str, BenchResult], path: str) -> dict:
    """Serialize results (plus pre-PR baselines and speedups) to ``path``."""
    benchmarks = {}
    for name, result in results.items():
        entry: dict = {"kind": result.kind, "seconds": result.seconds}
        entry.update(result.throughput)
        pre = PRE_PR_SECONDS.get(name)
        if pre is not None:
            entry["pre_pr_seconds"] = pre
            entry["speedup_vs_pre_pr"] = pre / result.seconds
        benchmarks[name] = entry
    payload = {"schema": 1, "benchmarks": benchmarks}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_bench_json(path: str) -> dict:
    """Load a committed ``BENCH_perf.json``."""
    with open(path) as fh:
        return json.load(fh)


def check_regressions(
    results: dict[str, BenchResult],
    committed_path: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Compare a fresh run against the committed baselines.

    Returns a list of human-readable problems (empty = pass): wall-time
    benchmarks must stay under ``threshold`` x their committed ``seconds``;
    the correlation ratio benchmark must stay above
    :data:`MIN_CORRELATION_RATIO` and the disabled-telemetry ratio below
    :data:`MAX_TELEMETRY_DISABLED_RATIO` (both are exempt from the
    wall-time rule, since their ``seconds`` fields are ratios).
    """
    committed = load_bench_json(committed_path)["benchmarks"]
    problems = []
    for name, result in results.items():
        if name == "micro-correlation-vs-oracle-ratio":
            if result.seconds < MIN_CORRELATION_RATIO:
                problems.append(
                    f"{name}: vectorized/oracle ratio {result.seconds:.1f}x "
                    f"below required {MIN_CORRELATION_RATIO:.1f}x"
                )
            continue
        if name == "micro-telemetry-disabled-ratio":
            if result.seconds > MAX_TELEMETRY_DISABLED_RATIO:
                problems.append(
                    f"{name}: disabled-telemetry ratio {result.seconds:.3f}x "
                    f"exceeds budget {MAX_TELEMETRY_DISABLED_RATIO:.2f}x"
                )
            continue
        baseline = committed.get(name)
        if baseline is None:
            problems.append(f"{name}: no committed baseline in {committed_path}")
            continue
        limit = baseline["seconds"] * threshold
        if result.seconds > limit:
            problems.append(
                f"{name}: {result.seconds:.4f}s exceeds "
                f"{threshold:.1f}x committed baseline "
                f"({baseline['seconds']:.4f}s)"
            )
    return problems
