"""The benchmark suite behind ``python -m repro perf``.

Two kinds of benchmarks guard the attribution stack's speed:

* **micro** -- isolated hot kernels (event-vector math, ``active_power``,
  the simulator queue, ``correlation_curve``), each timed over enough
  iterations that per-call overhead dominates noise;
* **macro** -- one end-to-end seeded Solr workload run, the same shape the
  determinism gate replays, timing the whole simulator -> accounting ->
  tracing pipeline.

Results are emitted as ``BENCH_perf.json`` (schema 2).  The committed copy
at the repo root records, per benchmark: the wall time measured when the
file was last regenerated (``seconds`` -- always a wall time), derived
throughput (events/sec, samples/sec), an explicit ``ratio`` field for the
machine-independent ratio benchmarks, and -- for the benchmarks that
existed before the optimization PR -- the pre-optimization wall time
(``pre_pr_seconds``) measured with the same methodology, so the speedup is
an apples-to-apples ratio inside one file.  Schema 1 files stored ratios
*in* the ``seconds`` field; :func:`load_bench_json` migrates them.

:func:`check_regressions` is the CI contract (the ``perf`` lane): a fresh
run must stay under ``threshold`` x the committed wall times, and every
machine-independent ratio (vectorized ``correlation_curve`` vs its loop
oracle, batch accounting vs the scalar oracle, the disabled-telemetry tax)
must hold its bound.  Wall-clock comparisons against a committed file are
inherently machine-relative, hence the generous default threshold; the
ratio checks have no such dependence.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

#: Wall times measured immediately before the optimization PR, with the
#: exact methodology of the corresponding benchmark below, committed so the
#: speedup claims stay auditable.  Do not update these when regenerating
#: baselines -- they are the historical reference point.
PRE_PR_SECONDS = {
    "macro-solr-workload": 0.8485575700005938,
    "micro-correlation-curve": 0.005122571666712854,
}

#: CI regression threshold: fresh wall time may be at most this multiple of
#: the committed wall time (absorbs machine and load variance).
DEFAULT_THRESHOLD = 3.0

#: Minimum required speed ratio of the vectorized ``correlation_curve``
#: over the loop oracle (machine-independent; measured ~27x).
MIN_CORRELATION_RATIO = 5.0

#: Minimum required speed ratio of the batched accounting kernels over the
#: per-core scalar oracle at shard scale (machine-independent).
MIN_ACCOUNTING_RATIO = 2.0

#: Maximum wall-time ratio of a run with an attached-but-disabled
#: :class:`~repro.telemetry.Telemetry` handle over a bare run.  The
#: disabled-mode guards (``if t is not None and t.enabled``) on every hot
#: path must stay within this budget (machine-independent; measured ~1.0).
MAX_TELEMETRY_DISABLED_RATIO = 1.05

#: Iterations per arm of the telemetry-overhead benchmark.  Module-level
#: because the schema-1 migration reconstructs that benchmark's wall time
#: from its recorded samples/sec.
_TELEMETRY_ITERATIONS = 10_000

#: Maximum wall-time ratio of a shard worker's epoch-barrier loop with a
#: disabled telemetry handle over the telemetry-off loop.  The frame
#: machinery must be invisible when frames are not requested: mode
#: "disabled" pays one handle attach plus the ``drain_frame()`` None path
#: per barrier (machine-independent; measured ~1.0).
MAX_TELEMETRY_FRAME_RATIO = 1.05

#: Epoch barriers per timed chunk of the frame-overhead benchmark, and the
#: number of paired off/disabled chunks.  Every barrier advances a busy
#: four-machine shard (~50-100 us of real simulation), so a 5% budget is
#: measured against meaningful work rather than empty-loop jitter; the
#: chunks of the two modes alternate back-to-back so load drift hits both
#: equally, and the reported ratio is the median over the pairs.
_FRAME_EPOCHS = 250
_FRAME_ROUNDS = 12

#: Minimum required parallel speedup of the 4-worker sharded cluster run
#: over the single-process run.  Unlike the other ratio floors this one is
#: machine-*dependent* -- it needs real cores to parallelize onto -- so
#: :func:`check_regressions` only enforces it when the host exposes at
#: least :data:`_SHARD_SPEEDUP_MIN_CORES` cores; on smaller hosts the
#: honestly-measured ratio is still recorded in ``BENCH_perf.json``.
MIN_SHARD_SPEEDUP = 2.5
_SHARD_SPEEDUP_MIN_CORES = 4


@dataclass
class BenchResult:
    """One benchmark's timing plus derived throughput numbers.

    ``seconds`` is always a wall time.  Ratio benchmarks additionally set
    ``ratio`` -- the machine-independent quantity their CI bound checks --
    instead of smuggling it through ``seconds`` as schema 1 did.
    """

    name: str
    kind: str  # "micro" or "macro"
    seconds: float
    throughput: dict[str, float] = field(default_factory=dict)
    ratio: float | None = None


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# Macro benchmark
# ---------------------------------------------------------------------------
def bench_macro_solr() -> BenchResult:
    """End-to-end seeded Solr run, best of 3 (calibration excluded, like
    the pre-PR measurement): simulator + kernel + accounting + tracing."""
    from repro.core import calibrate_machine
    from repro.hardware import SANDYBRIDGE
    from repro.workloads import SolrWorkload, run_workload

    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1)

    run = None
    seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run = run_workload(
            SolrWorkload(), SANDYBRIDGE, calibration,
            load_fraction=0.6, duration=1.5, warmup=0.2, seed=7,
        )
        seconds = min(seconds, time.perf_counter() - start)
    events = run.facility.simulator.events_processed
    requests = len(run.driver.results)
    return BenchResult(
        "macro-solr-workload", "macro", seconds,
        throughput={
            "events_per_sec": events / seconds,
            "requests_per_sec": requests / seconds,
        },
    )


def bench_cluster_sharded() -> BenchResult:
    """Sharded cluster run: single-process baseline vs 2 and 4 workers.

    One 24-machine Solr macro config is run with one shard in-process,
    then with four shards on two and on four fork workers.  All arms must
    produce identical fingerprints (a perf benchmark that silently broke
    determinism would be worse than a slow one), and each arm's wall time
    is recorded.  ``seconds`` is the single-process wall time; ``ratio``
    is the 4-worker parallel speedup (baseline / 4-worker wall time),
    which :func:`check_regressions` holds above
    :data:`MIN_SHARD_SPEEDUP` on hosts with enough cores.
    """
    from repro.faults.harness import chaos_calibration
    from repro.hardware.specs import spec_by_name
    from repro.shard import run_sharded
    from repro.shard.coordinator import SPEC_CYCLE
    from repro.shard.scenario import solr_macro_config

    for spec_name in SPEC_CYCLE:  # exclude calibration from the timings
        chaos_calibration(spec_by_name(spec_name))

    def arm(n_shards: int, workers: int):
        config = solr_macro_config(
            n_shards=n_shards, workers=workers, n_machines=24, duration=1.0
        )
        best = float("inf")
        result = None
        for _ in range(2):
            start = time.perf_counter()
            result = run_sharded(config)
            best = min(best, time.perf_counter() - start)
        return best, result

    baseline_seconds, baseline = arm(1, 1)
    two_seconds, two = arm(4, 2)
    four_seconds, four = arm(4, 4)
    if not (baseline.fingerprints == two.fingerprints == four.fingerprints):
        raise RuntimeError("sharded arms diverged: fingerprints differ")
    return BenchResult(
        "macro-cluster-sharded", "macro", baseline_seconds,
        throughput={
            "requests_per_sec": baseline.n_requests / baseline_seconds,
            "workers_1_seconds": baseline_seconds,
            "workers_2_seconds": two_seconds,
            "workers_4_seconds": four_seconds,
            "speedup_2_workers": baseline_seconds / two_seconds,
        },
        ratio=baseline_seconds / four_seconds,
    )


# ---------------------------------------------------------------------------
# Micro benchmarks
# ---------------------------------------------------------------------------
def bench_correlation_curve() -> BenchResult:
    """Eq. 4 delay search at recalibration scale (4000-sample series,
    1500-sample delay window) -- the pre-PR measurement's exact shape."""
    from repro.core.alignment import correlation_curve

    rng = np.random.default_rng(0)
    measured = rng.normal(50, 5, 4000)
    modeled = rng.normal(50, 5, 4000)
    correlation_curve(measured, modeled, 1500)  # warm numpy's FFT setup

    start = time.perf_counter()
    for _ in range(3):
        correlation_curve(measured, modeled, 1500)
    seconds = (time.perf_counter() - start) / 3
    return BenchResult(
        "micro-correlation-curve", "micro", seconds,
        throughput={"delays_per_sec": 1501 / seconds},
    )


def bench_correlation_ratio() -> BenchResult:
    """Loop oracle vs vectorized curve on the same inputs.  ``seconds`` is
    the vectorized arm's wall time; ``ratio`` is oracle/vectorized."""
    from repro.core.alignment import correlation_curve, correlation_curve_reference

    rng = np.random.default_rng(0)
    measured = rng.normal(50, 5, 4000)
    modeled = rng.normal(50, 5, 4000)
    correlation_curve(measured, modeled, 1500)

    vectorized = _best_of(lambda: correlation_curve(measured, modeled, 1500))
    reference = _best_of(
        lambda: correlation_curve_reference(measured, modeled, 1500), repeats=1
    )
    return BenchResult(
        "micro-correlation-vs-oracle-ratio", "micro", vectorized,
        throughput={
            "vectorized_seconds": vectorized,
            "reference_seconds": reference,
        },
        ratio=reference / vectorized,
    )


def bench_telemetry_overhead() -> BenchResult:
    """Disabled-telemetry tax on the hottest instrumented path.

    Times ``CoreAccountant.sample`` -- the per-context-switch/overflow
    accounting step that runs orders of magnitude more often than any
    other instrumented site -- on an occupied core, with no telemetry vs
    an attached-but-disabled :class:`~repro.telemetry.Telemetry` handle.
    ``seconds`` is the bare arm's wall time; ``ratio`` is disabled/bare
    (machine-independent, ~1.0), guarding the documented <=5%
    disabled-mode budget.
    """
    from repro.core import PowerContainerFacility, calibrate_machine
    from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
    from repro.kernel import Compute, Kernel
    from repro.sim import Simulator
    from repro.telemetry import Telemetry

    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1)
    spin = RateProfile(name="bench-spin", ipc=1.0)
    iterations = _TELEMETRY_ITERATIONS

    def build_accountant(telemetry):
        sim = Simulator()
        machine = build_machine(SANDYBRIDGE, sim)
        kernel = Kernel(machine, sim)
        facility = PowerContainerFacility(
            kernel, calibration, telemetry=telemetry
        )
        container = facility.create_request_container("bench")

        def program():
            yield Compute(cycles=machine.freq_hz * 60.0, profile=spin)

        kernel.spawn(
            program(), "spin", container_id=container.id, pinned_core=0
        )
        sim.run_until(1e-3)  # dispatch the process so core 0 is occupied
        return facility.accountants[0]

    def arm_seconds(telemetry):
        accountant = build_accountant(telemetry)
        assert accountant.occupied
        now = 1e-3
        start = time.perf_counter()
        for _ in range(iterations):
            now += 1e-4
            accountant.sample(now)
        return time.perf_counter() - start

    arm_seconds(None)  # warm imports and caches
    # Interleave the arms and keep each arm's minimum: back-to-back pairs
    # cancel machine-load drift that separated best-of runs cannot, which
    # matters when the budget is a few percent.
    bare = float("inf")
    disabled = float("inf")
    for _ in range(8):
        bare = min(bare, arm_seconds(None))
        disabled = min(disabled, arm_seconds(Telemetry(enabled=False)))
    return BenchResult(
        "micro-telemetry-disabled-ratio", "micro", bare,
        throughput={
            "bare_samples_per_sec": iterations / bare,
            "disabled_samples_per_sec": iterations / disabled,
        },
        ratio=disabled / bare,
    )


def bench_telemetry_frame_overhead() -> BenchResult:
    """Disabled-path cost of the cross-shard telemetry frame machinery.

    Times a shard worker's epoch-barrier loop (``ShardWorld.run_epoch``
    followed by ``drain_frame()`` -- the exact per-barrier sequence the
    pool executor runs) with telemetry ``"off"`` vs ``"disabled"``.
    Every core 0 runs a pinned spin process so each barrier advances a
    *busy* four-machine shard through its overflow-interrupt/accounting
    slices -- the denominator is real simulation work, not an empty event
    loop.  Neither mode builds a
    :class:`~repro.telemetry.aggregate.FrameDrain`, so the disabled arm
    isolates precisely what every non-frame run pays for the frame
    plumbing: the attached-but-disabled handle consulted at the sampling
    sites plus the ``drain_frame()`` None path at every barrier.

    Both worlds are built once and their timed chunks alternate
    back-to-back, so machine-load drift lands on both modes equally; the
    reported ``ratio`` is the *median* over the per-round disabled/off
    pairs -- the estimator a 5% budget needs on a busy single-core CI
    host, where separated best-of arms still scatter by +-10%.
    ``seconds`` is the off arm's total timed wall time; ``ratio`` must
    stay within :data:`MAX_TELEMETRY_FRAME_RATIO`.
    """
    import gc
    import statistics

    from repro.faults.harness import chaos_calibration
    from repro.hardware import RateProfile
    from repro.hardware.specs import spec_by_name
    from repro.kernel import Compute
    from repro.shard.worker import ShardConfig, ShardWorld

    calibrations = {
        "sandybridge": chaos_calibration(spec_by_name("sandybridge"))
    }
    machines = tuple((f"m{i}", "sandybridge") for i in range(4))
    spin = RateProfile(name="bench-frame-spin", ipc=1.0)

    def build(mode):
        world = ShardWorld.build(
            ShardConfig(0, machines, "solr", telemetry=mode), calibrations
        )
        for member in world.cluster.machines:

            def program(machine=member.machine):
                yield Compute(cycles=machine.freq_hz * 3600.0, profile=spin)

            container = member.facility.create_request_container("bench")
            member.kernel.spawn(
                program(), "spin", container_id=container.id, pinned_core=0
            )
        return [world, 0.0]  # (world, its simulation clock)

    def chunk_seconds(entry):
        world, now = entry
        start = time.perf_counter()
        for _ in range(_FRAME_EPOCHS):
            now += 1e-3
            world.run_epoch(now)
            world.drain_frame()
        elapsed = time.perf_counter() - start
        entry[1] = now
        return elapsed

    off_world = build("off")
    disabled_world = build("disabled")
    chunk_seconds(off_world)  # warm imports, caches, and both worlds
    chunk_seconds(disabled_world)
    # A collection pause landing in one chunk but not its pair would swamp
    # a 5% budget; collect the build garbage now and keep the collector
    # out of the timed rounds.
    gc.collect()
    gc.disable()
    try:
        off_total = 0.0
        disabled_total = 0.0
        ratios = []
        for _ in range(_FRAME_ROUNDS):
            off = chunk_seconds(off_world)
            disabled = chunk_seconds(disabled_world)
            off_total += off
            disabled_total += disabled
            ratios.append(disabled / off)
    finally:
        gc.enable()
    timed_epochs = _FRAME_EPOCHS * _FRAME_ROUNDS
    return BenchResult(
        "micro-telemetry-frame-overhead", "micro", off_total,
        throughput={
            "off_barriers_per_sec": timed_epochs / off_total,
            "disabled_barriers_per_sec": timed_epochs / disabled_total,
        },
        ratio=statistics.median(ratios),
    )


def bench_batch_accounting() -> BenchResult:
    """One vectorized accounting pass over every core of a machine.

    Times :meth:`BatchAccountingEngine.sample_all` -- the synchronous
    accounting tick behind ``Facility.flush`` and sharded sweeps -- on a
    fully occupied SANDYBRIDGE machine, so every pass runs the complete
    gather -> vectorized kernels -> per-core ``_charge`` pipeline.
    """
    from repro.core import PowerContainerFacility, calibrate_machine
    from repro.hardware import RateProfile, SANDYBRIDGE, build_machine
    from repro.kernel import Compute, Kernel
    from repro.sim import Simulator

    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1)
    spin = RateProfile(name="bench-spin", ipc=1.0)
    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    kernel = Kernel(machine, sim)
    facility = PowerContainerFacility(kernel, calibration)
    for index in range(len(machine.cores)):
        container = facility.create_request_container(f"bench-{index}")

        def program():
            yield Compute(cycles=machine.freq_hz * 60.0, profile=spin)

        kernel.spawn(
            program(), f"spin-{index}", container_id=container.id,
            pinned_core=index,
        )
    sim.run_until(1e-3)  # dispatch the processes so every core is occupied
    engine = facility.batch_engine
    iterations = 2_000
    n_cores = len(machine.cores)
    clock = [1e-3]  # monotone across repeats so every pass charges

    def body():
        now = clock[0]
        for _ in range(iterations):
            now += 1e-4
            engine.sample_all(now)
        clock[0] = now

    body()  # warm
    seconds = _best_of(body)
    samples = iterations * n_cores
    return BenchResult(
        "micro-batch-accounting", "micro", seconds,
        throughput={"samples_per_sec": samples / seconds},
    )


def bench_accounting_oracle_ratio() -> BenchResult:
    """Per-core scalar oracle vs the batched kernels at shard scale.

    Runs the front-half accounting arithmetic (wrap deltas, observer
    correction, utilization metrics) for 256 synthetic cores -- a sharded
    sweep's accounting tick -- once per core through
    :func:`repro.core.batch.reference_sample` and once through the batch
    kernels, after checking the two agree bit for bit.  ``seconds`` is the
    batched arm's wall time; ``ratio`` is oracle/batched and must stay
    above :data:`MIN_ACCOUNTING_RATIO`.
    """
    from repro.core.batch import (
        CPU_FIELDS, batch_observer_correction, batch_utilization,
        batch_wrap_deltas, reference_sample,
    )
    from repro.hardware.counters import COUNTER_WRAP

    rng = np.random.default_rng(3)
    n = 256
    baseline = rng.uniform(0.0, COUNTER_WRAP, (n, 7))
    snapshot = (baseline + rng.uniform(0.0, 1e9, (n, 7))) % COUNTER_WRAP
    units = rng.uniform(0.0, 100.0, (n, CPU_FIELDS))
    ops = rng.integers(0, 50, n).astype(float)
    dts = np.full(n, 1e-3)
    freq = np.full(n, 2.6e9)

    def batched() -> np.ndarray:
        deltas = batch_wrap_deltas(snapshot, baseline)
        deltas = batch_observer_correction(deltas, units, ops)
        return batch_utilization(deltas, freq * dts)

    def oracle() -> list:
        out = []
        for i in range(n):
            out.append(reference_sample(
                snapshot[i], baseline[i], float(dts[i]), float(freq[i]),
                observer_unit=units[i], pending_ops=int(ops[i]),
            ))
        return out

    oracle_metrics = np.array([metrics for _, metrics in oracle()])
    if not (batched() == oracle_metrics).all():
        raise RuntimeError("batch kernels diverged from the scalar oracle")

    iterations = 50

    def batch_body():
        for _ in range(iterations):
            batched()

    def oracle_body():
        for _ in range(iterations):
            oracle()

    batch_seconds = _best_of(batch_body)
    oracle_seconds = _best_of(oracle_body, repeats=1)
    return BenchResult(
        "micro-accounting-vs-oracle-ratio", "micro", batch_seconds,
        throughput={
            "batched_samples_per_sec": n * iterations / batch_seconds,
            "oracle_seconds": oracle_seconds,
        },
        ratio=oracle_seconds / batch_seconds,
    )


def bench_event_vector() -> BenchResult:
    """Slot-backed EventVector arithmetic: add/subtract/scaled round trips."""
    from repro.hardware.events import EventVector

    iterations = 20_000
    a = EventVector(1e6, 2e6, 3e4, 4e3, 5e2, 10.0, 11.0)
    b = EventVector(5e5, 1e6, 1e4, 2e3, 2e2, 3.0, 4.0)

    def body():
        acc = EventVector()
        for _ in range(iterations):
            acc.add(a)
            acc.subtract(b)
            a.scaled(2.0)

    seconds = _best_of(body)
    ops = iterations * 3
    return BenchResult(
        "micro-event-vector", "micro", seconds,
        throughput={"ops_per_sec": ops / seconds},
    )


def bench_active_power() -> BenchResult:
    """Per-sample model evaluation: the Eq. 1/2 inner product."""
    from repro.core.model import FEATURES_EQ2, MetricSample, PowerModel

    model = PowerModel(
        features=FEATURES_EQ2,
        coefficients=np.array([20.0, 4.0, 6.0, 9.0, 14.0, 11.0]),
        idle_watts=80.0,
    )
    sample = MetricSample(
        mcore=0.8, mins=1.2, mfloat=0.1, mcache=0.02, mmem=0.01,
        mchipshare=0.5,
    )
    iterations = 50_000

    def body():
        for _ in range(iterations):
            model.active_power(sample)

    seconds = _best_of(body)
    return BenchResult(
        "micro-active-power", "micro", seconds,
        throughput={"samples_per_sec": iterations / seconds},
    )


def bench_simulator_queue() -> BenchResult:
    """Event queue churn: one-shot scheduling plus a recurring tick."""
    from repro.sim.engine import Simulator

    def body():
        sim = Simulator()
        counter = [0]

        def bump():
            counter[0] += 1

        sim.schedule_recurring(1e-4, bump, label="tick")
        for i in range(10_000):
            sim.schedule(1e-6 * (i + 1), bump, label="one-shot")
        sim.run_until(1.0)

    seconds = _best_of(body)
    # 10k one-shots + 10k recurring firings per run.
    return BenchResult(
        "micro-simulator-queue", "micro", seconds,
        throughput={"events_per_sec": 20_000 / seconds},
    )


#: All benchmarks, run in this order.
SUITE = (
    bench_event_vector,
    bench_active_power,
    bench_simulator_queue,
    bench_correlation_curve,
    bench_correlation_ratio,
    bench_telemetry_overhead,
    bench_telemetry_frame_overhead,
    bench_batch_accounting,
    bench_accounting_oracle_ratio,
    bench_macro_solr,
    bench_cluster_sharded,
)


def run_suite() -> dict[str, BenchResult]:
    """Run every benchmark; returns ``{name: BenchResult}`` in suite order."""
    results = {}
    for bench in SUITE:
        result = bench()
        results[result.name] = result
    return results


# ---------------------------------------------------------------------------
# BENCH_perf.json I/O and the CI regression contract
# ---------------------------------------------------------------------------
#: Ratio benchmarks with a required *minimum* ratio (speedup floors).
RATIO_MINIMUMS = {
    "micro-correlation-vs-oracle-ratio": MIN_CORRELATION_RATIO,
    "micro-accounting-vs-oracle-ratio": MIN_ACCOUNTING_RATIO,
}

#: Ratio benchmarks with a required *maximum* ratio (overhead budgets).
RATIO_MAXIMUMS = {
    "micro-telemetry-disabled-ratio": MAX_TELEMETRY_DISABLED_RATIO,
    "micro-telemetry-frame-overhead": MAX_TELEMETRY_FRAME_RATIO,
}


def write_bench_json(results: dict[str, BenchResult], path: str) -> dict:
    """Serialize results (plus pre-PR baselines and speedups) to ``path``.

    Schema 2: ``seconds`` is always a wall time, and ratio benchmarks
    carry their machine-independent quantity in an explicit ``ratio``
    field.
    """
    benchmarks = {}
    for name, result in results.items():
        entry: dict = {"kind": result.kind, "seconds": result.seconds}
        if result.ratio is not None:
            entry["ratio"] = result.ratio
        entry.update(result.throughput)
        pre = PRE_PR_SECONDS.get(name)
        if pre is not None:
            entry["pre_pr_seconds"] = pre
            entry["speedup_vs_pre_pr"] = pre / result.seconds
        benchmarks[name] = entry
    payload = {"schema": 2, "benchmarks": benchmarks}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def _migrate_schema1(payload: dict) -> dict:
    """Schema 1 -> 2 in place: un-smuggle the ratios out of ``seconds``.

    Schema 1 stored the two ratio benchmarks' ratios *as* their
    ``seconds``.  The migration moves those into ``ratio`` and recovers a
    real wall time from the recorded throughput fields (the vectorized
    correlation arm's seconds; the telemetry bench's bare arm via its
    samples/sec and the fixed iteration count).  When the throughput field
    is missing the wall time is set to ``0.0``, which
    :func:`check_regressions` treats as "no wall baseline".
    """
    for name, entry in payload.get("benchmarks", {}).items():
        if "ratio" in entry:
            continue
        if name == "micro-correlation-vs-oracle-ratio":
            entry["ratio"] = entry["seconds"]
            entry["seconds"] = entry.get("vectorized_seconds", 0.0)
        elif name == "micro-telemetry-disabled-ratio":
            entry["ratio"] = entry["seconds"]
            bare = entry.get("bare_samples_per_sec")
            entry["seconds"] = _TELEMETRY_ITERATIONS / bare if bare else 0.0
    payload["schema"] = 2
    return payload


def load_bench_json(path: str) -> dict:
    """Load a committed ``BENCH_perf.json``, migrating old schemas."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema", 1) < 2:
        payload = _migrate_schema1(payload)
    return payload


def check_regressions(
    results: dict[str, BenchResult],
    committed_path: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Compare a fresh run against the committed baselines.

    Returns a list of human-readable problems (empty = pass).  Every
    benchmark's wall time must stay under ``threshold`` x its committed
    ``seconds`` (skipped when a schema-1 migration could not recover a
    wall baseline); ratio benchmarks must additionally hold their
    machine-independent bounds (:data:`RATIO_MINIMUMS` speedup floors,
    :data:`RATIO_MAXIMUMS` overhead budgets).
    """
    from repro.analysis.parallel import available_cores

    committed = load_bench_json(committed_path)["benchmarks"]
    problems = []
    for name, result in results.items():
        if (
            name == "macro-cluster-sharded"
            and available_cores() >= _SHARD_SPEEDUP_MIN_CORES
        ):
            # Machine-dependent floor: only meaningful with real cores to
            # parallelize onto (a 1-core CI host records the honest ratio
            # but cannot be held to a speedup it physically cannot reach).
            if result.ratio is None:
                problems.append(f"{name}: no speedup ratio was measured")
            elif result.ratio < MIN_SHARD_SPEEDUP:
                problems.append(
                    f"{name}: 4-worker speedup {result.ratio:.2f}x below "
                    f"required {MIN_SHARD_SPEEDUP:.1f}x"
                )
        minimum = RATIO_MINIMUMS.get(name)
        if minimum is not None:
            if result.ratio is None:
                problems.append(f"{name}: no ratio was measured")
            elif result.ratio < minimum:
                problems.append(
                    f"{name}: speed ratio {result.ratio:.1f}x below "
                    f"required {minimum:.1f}x"
                )
        maximum = RATIO_MAXIMUMS.get(name)
        if maximum is not None:
            if result.ratio is None:
                problems.append(f"{name}: no ratio was measured")
            elif result.ratio > maximum:
                problems.append(
                    f"{name}: overhead ratio {result.ratio:.3f}x exceeds "
                    f"budget {maximum:.2f}x"
                )
        baseline = committed.get(name)
        if baseline is None:
            problems.append(f"{name}: no committed baseline in {committed_path}")
            continue
        if baseline["seconds"] <= 0.0:
            continue  # migrated entry without a recoverable wall time
        limit = baseline["seconds"] * threshold
        if result.seconds > limit:
            problems.append(
                f"{name}: {result.seconds:.4f}s exceeds "
                f"{threshold:.1f}x committed baseline "
                f"({baseline['seconds']:.4f}s)"
            )
    return problems
