"""Per-request cross-machine energy profiles (Section 3.4, Fig. 13-14).

Power containers measure each request type's energy on each machine model.
The :class:`EnergyProfileTable` aggregates those measurements into mean
energy-per-request values, from which the workload-heterogeneity-aware
dispatcher derives *relative energy affinity*: the ratio of a request
type's energy on one machine to its energy on another.  Types with the
lowest ratio benefit most from the efficient machine; types with a ratio
near 1.0 (like the paper's Stress at 0.91) lose little when displaced to
the older machine.
"""

from __future__ import annotations

from collections import defaultdict


class EnergyProfileTable:
    """Mean per-request energy, keyed by (machine name, request type)."""

    def __init__(self) -> None:
        self._sum: dict[tuple[str, str], float] = defaultdict(float)
        self._count: dict[tuple[str, str], int] = defaultdict(int)

    def record(self, machine: str, request_type: str, energy_joules: float) -> None:
        """Fold one completed request's measured energy into the profile."""
        if energy_joules < 0:
            raise ValueError("energy must be non-negative")
        key = (machine, request_type)
        self._sum[key] += energy_joules
        self._count[key] += 1

    def has_profile(self, machine: str, request_type: str) -> bool:
        """True when at least one sample exists for the pair."""
        return self._count[(machine, request_type)] > 0

    def mean_energy(self, machine: str, request_type: str) -> float:
        """Mean energy of the request type on the machine (J)."""
        key = (machine, request_type)
        if self._count[key] == 0:
            raise KeyError(f"no energy profile for {key}")
        return self._sum[key] / self._count[key]

    def sample_count(self, machine: str, request_type: str) -> int:
        """Number of recorded requests for the pair."""
        return self._count[(machine, request_type)]

    def ratio(self, request_type: str, numerator: str, denominator: str) -> float:
        """Cross-machine energy ratio (paper Fig. 13's Y axis)."""
        denom = self.mean_energy(denominator, request_type)
        if denom <= 0:
            raise ValueError(f"zero denominator energy for {request_type}")
        return self.mean_energy(numerator, request_type) / denom

    def affinity_order(
        self, request_types: list[str], preferred: str, fallback: str
    ) -> list[str]:
        """Request types sorted by how strongly they prefer ``preferred``.

        The first entries gain the most (lowest energy ratio) from running
        on the preferred machine; the last entries are the cheapest to
        displace onto the fallback machine.
        """
        def key(rtype: str) -> float:
            try:
                return self.ratio(rtype, preferred, fallback)
            except KeyError:
                return 1.0  # unknown types are neutral

        return sorted(request_types, key=key)

    def known_types(self, machine: str) -> list[str]:
        """Request types profiled on a machine."""
        return sorted(
            {rtype for (m, rtype), n in self._count.items() if m == machine and n}
        )

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Sums and counts flattened to ``machine|rtype`` string keys."""
        return {
            "v": 1,
            "sums": {
                f"{machine}|{rtype}": value
                for (machine, rtype), value in sorted(self._sum.items())
            },
            "counts": {
                f"{machine}|{rtype}": value
                for (machine, rtype), value in sorted(self._count.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown EnergyProfileTable snapshot version {state.get('v')!r}"
            )
        self._sum = defaultdict(float)
        self._count = defaultdict(int)
        for key, value in state["sums"].items():
            machine, rtype = key.split("|", 1)
            self._sum[(machine, rtype)] = value
        for key, value in state["counts"].items():
            machine, rtype = key.split("|", 1)
            self._count[(machine, rtype)] = value
