"""Power containers -- the paper's contribution.

This package implements the three key techniques of the paper on top of the
simulated hardware (:mod:`repro.hardware`) and kernel (:mod:`repro.kernel`):

1. :mod:`~repro.core.model`, :mod:`~repro.core.chipshare`,
   :mod:`~repro.core.accounting` -- event-driven multicore power attribution
   with shared chip maintenance power (Eq. 1-3);
2. :mod:`~repro.core.alignment`, :mod:`~repro.core.recalibration`,
   :mod:`~repro.core.calibration` -- offline model calibration plus
   measurement-aligned online recalibration (Eq. 4);
3. :mod:`~repro.core.container`, :mod:`~repro.core.registry`,
   :mod:`~repro.core.facility` -- on-the-fly request tracking and
   per-request power/energy statistics.

Management case studies build on these:
:mod:`~repro.core.conditioning` (fair power capping via per-request
duty-cycle modulation) and :mod:`~repro.core.distribution`
(heterogeneity-aware request placement).
"""

from repro.core.model import MetricSample, PowerModel, FEATURES_EQ1, FEATURES_EQ2
from repro.core.chipshare import ChipShareEstimator
from repro.core.container import ContainerStats, PowerContainer
from repro.core.registry import BACKGROUND_CONTAINER_ID, ContainerRegistry
from repro.core.alignment import (
    align_series,
    correlation_curve,
    correlation_curve_reference,
    cross_correlation,
    estimate_delay,
)
from repro.core.recalibration import OnlineRecalibrator, RecalibrationGuard
from repro.core.calibration import (
    CalibrationResult,
    calibrate_machine,
    calibrate_machines,
    calibration_microbenchmarks,
)
from repro.core.accounting import CoreAccountant, ObserverEffect
from repro.core.batch import (
    BatchAccountingEngine,
    batch_observer_correction,
    batch_utilization,
    batch_wrap_deltas,
    reference_sample,
)
from repro.core.facility import (
    ApproachConfig,
    FacilityHealth,
    PowerContainerFacility,
)
from repro.core.conditioning import PowerConditioner
from repro.core.distribution import EnergyProfileTable
from repro.core.anomaly import (
    AnomalyReport,
    DetectingConditionerBridge,
    PowerAnomalyDetector,
)
from repro.core.budget import EnergyBudgetConditioner
from repro.core.clients import ClientEnergyLedger, ClientUsage
from repro.core.dvfs import DvfsConditioner
from repro.core.powercap import (
    BROWNOUT_LADDER,
    BrownoutTransition,
    PowerCapEnforcer,
)

__all__ = [
    "MetricSample",
    "PowerModel",
    "FEATURES_EQ1",
    "FEATURES_EQ2",
    "ChipShareEstimator",
    "ContainerStats",
    "PowerContainer",
    "BACKGROUND_CONTAINER_ID",
    "ContainerRegistry",
    "align_series",
    "correlation_curve",
    "correlation_curve_reference",
    "cross_correlation",
    "estimate_delay",
    "OnlineRecalibrator",
    "RecalibrationGuard",
    "CalibrationResult",
    "calibrate_machine",
    "calibrate_machines",
    "calibration_microbenchmarks",
    "CoreAccountant",
    "ObserverEffect",
    "BatchAccountingEngine",
    "batch_observer_correction",
    "batch_utilization",
    "batch_wrap_deltas",
    "reference_sample",
    "ApproachConfig",
    "FacilityHealth",
    "PowerContainerFacility",
    "PowerConditioner",
    "EnergyProfileTable",
    "AnomalyReport",
    "DetectingConditionerBridge",
    "PowerAnomalyDetector",
    "ClientEnergyLedger",
    "ClientUsage",
    "DvfsConditioner",
    "EnergyBudgetConditioner",
    "BROWNOUT_LADDER",
    "BrownoutTransition",
    "PowerCapEnforcer",
]
