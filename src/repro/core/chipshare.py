"""Estimating a task's share of shared chip maintenance power (Eq. 3).

On an n-core chip, the task on core ``c`` is attributed::

    Mchipshare(c) = Mcore(c) * 1 / (1 + sum_{i != c} Mcore(i))

where sibling utilizations come from each sibling's *most recent posted
counter sample* -- read without any cross-core synchronization, so the value
can be stale.  Because sampling interrupts stop on idle cores (non-halt
cycle triggers), a long-idle sibling's mailbox still shows its last busy
utilization; the paper's fix is to check whether the OS is currently
scheduling the idle task on the sibling and treat its rate as zero if so.

Three modes support the ablation study:

* ``"mailbox"`` -- the paper's design (stale samples + idle-task check);
* ``"oracle"``  -- exact instantaneous share (1/k among the k busy cores),
  an upper bound no real implementation can reach without global
  synchronization;
* ``"none"``    -- no chip-share attribution (validation approach #1).
"""

from __future__ import annotations

from repro.hardware.core import Core

_MODES = ("mailbox", "oracle", "none")


class ChipShareEstimator:
    """Per-core estimator of the Eq. 3 ``Mchipshare`` metric."""

    def __init__(self, mode: str = "mailbox", idle_task_check: bool = True) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        #: Whether to zero a sibling's stale sample when the sibling is
        #: currently idle (the paper's correction).  Exposed for ablation.
        self.idle_task_check = idle_task_check

    def estimate(self, core: Core, own_mcore: float) -> float:
        """Share of the chip's maintenance power for the task on ``core``.

        ``own_mcore`` is the task's just-computed utilization over the
        sampling period (the freshest information the accountant has).
        """
        if self.mode == "none":
            return 0.0
        if own_mcore <= 0.0:
            return 0.0
        if self.mode == "oracle":
            busy = core.chip.busy_core_count
            if not core.busy:
                busy += 1  # the sampled task occupied this core this period
            return 1.0 / max(busy, 1)
        # mailbox mode (Eq. 3).  Inlined sibling.busy / mailbox.peek():
        # this runs for every accounting sample on every busy core.
        sibling_sum = 0.0
        idle_task_check = self.idle_task_check
        for sibling in core.chip.siblings_of(core):
            if idle_task_check and sibling.active_profile is None:
                continue  # OS runs the idle task there: rate is zero
            sibling_sum += sibling.mailbox._latest.mcore
        share = own_mcore / (1.0 + sibling_sum)
        return min(share, 1.0)
