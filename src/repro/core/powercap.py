"""Cluster-level power capping with a deterministic brownout ladder (§3.4).

The paper's power-capping experiment conditions individual requests on one
machine.  At cluster scale a cap is an *operational* constraint: when the
measured draw exceeds the configured cap the system must degrade in a
chosen order, not collapse.  :class:`PowerCapEnforcer` implements that
order as a four-rung ladder evaluated on a fixed control interval:

====  ============  =====================================================
rung  name          mechanism
====  ============  =====================================================
0     full-speed    no intervention
1     condition     per-machine :class:`~repro.core.conditioning.\
PowerConditioner` targets clamp the *heaviest* containers (each machine
                    gets an equal share of the cap; the conditioner's
                    per-core budget math throttles only requests whose
                    full-speed power exceeds their share)
2     shed          additionally, the overload protector sheds
                    low-priority arrivals (``brownout_level = 2``)
3     reject        all arrivals are rejected at admission
====  ============  =====================================================

Escalation is one rung per interval while measured power exceeds the
effective cap.  Stepping *down* requires hysteresis: measured power must
stay below ``cap * step_down_headroom`` for ``hold_intervals`` consecutive
intervals, which prevents the ladder from oscillating at the cap boundary.

**Degraded telemetry:** capping decisions are only as good as the meters
behind them.  When any machine's facility watchdog reports a stale meter
(``health.meter_state != "ok"``), the enforcer switches to a conservative
effective cap (``cap * degraded_cap_fraction``) until telemetry recovers --
we would rather over-throttle than browse past the breaker panel blind.

Everything runs on the simulated clock off machine ground-truth energy
integrators, so two identically-seeded runs produce identical ladder
transitions (the chaos determinism gate checks this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.conditioning import PowerConditioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.cluster import HeterogeneousCluster
    from repro.server.overload import OverloadProtector

#: Ladder rung names, indexed by level.
BROWNOUT_LADDER = ("full-speed", "condition", "shed", "reject")


@dataclass(frozen=True)
class BrownoutTransition:
    """One ladder move, for reports and the CLI demo."""

    at: float
    level: int
    name: str
    measured_watts: float
    effective_cap: float
    direction: str  # "up" | "down"


class PowerCapEnforcer:
    """Periodic cluster power-cap control loop driving the brownout ladder.

    Parameters
    ----------
    cluster:
        The :class:`~repro.server.cluster.HeterogeneousCluster` to cap.
        A :class:`~repro.core.conditioning.PowerConditioner` is attached to
        every member facility (replacing any existing conditioner).
    protector:
        The dispatcher's :class:`~repro.server.overload.OverloadProtector`,
        whose ``brownout_level`` this enforcer drives.  ``None`` restricts
        the ladder to rungs 0-1 (conditioning only).
    cap_watts:
        Cluster-wide *active* power cap in watts.  Mutable at runtime --
        the chaos :class:`~repro.faults.injectors.PowerCapInjector`
        squeezes it mid-run.
    interval:
        Control interval in simulated seconds; measured power is the
        active energy accumulated over the previous interval divided by
        its length.
    """

    def __init__(
        self,
        cluster: "HeterogeneousCluster",
        cap_watts: float,
        protector: Optional["OverloadProtector"] = None,
        interval: float = 0.02,
        step_down_headroom: float = 0.85,
        hold_intervals: int = 3,
        degraded_cap_fraction: float = 0.6,
        telemetry=None,
    ) -> None:
        if cap_watts <= 0:
            raise ValueError("power cap must be positive")
        if interval <= 0:
            raise ValueError("control interval must be positive")
        if not 0.0 < step_down_headroom <= 1.0:
            raise ValueError("step_down_headroom must be in (0, 1]")
        if hold_intervals < 1:
            raise ValueError("hold_intervals must be at least 1")
        if not 0.0 < degraded_cap_fraction <= 1.0:
            raise ValueError("degraded_cap_fraction must be in (0, 1]")
        self.cluster = cluster
        self.protector = protector
        self.cap_watts = cap_watts
        self.interval = interval
        self.step_down_headroom = step_down_headroom
        self.hold_intervals = hold_intervals
        self.degraded_cap_fraction = degraded_cap_fraction
        #: Optional :class:`~repro.telemetry.Telemetry` handle; ``None``
        #: (the default) keeps the control loop byte-identical.
        self.telemetry = telemetry

        self.level = 0
        self.transitions: list[BrownoutTransition] = []
        self.ticks = 0
        self.escalations = 0
        self.deescalations = 0
        self.over_cap_intervals = 0
        self.degraded_intervals = 0
        self.max_consecutive_over = 0
        self.measured_watts = 0.0
        self.degraded = False
        self._consecutive_over = 0
        self._intervals_under = 0
        self._last_joules: dict[str, float] = {}
        self._started = False

        # One conditioner per member, idle (infinite target) until rung 1.
        self.conditioners: dict[str, PowerConditioner] = {}
        for member in cluster.machines:
            conditioner = PowerConditioner(
                member.kernel, target_active_watts=float("inf")
            )
            member.facility.attach_conditioner(conditioner)
            self.conditioners[member.name] = conditioner

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Checkpoint energy and begin the recurring control loop."""
        if self._started:
            return
        self._started = True
        for member in self.cluster.machines:
            member.machine.checkpoint()
            self._last_joules[member.name] = member.machine.integrator.active_joules
        self.cluster.simulator.schedule_recurring(self.interval, self._tick)

    def effective_cap(self) -> float:
        """The cap actually enforced this interval (degraded mode aware)."""
        if self.degraded:
            return self.cap_watts * self.degraded_cap_fraction
        return self.cap_watts

    # ------------------------------------------------------------------
    def _measure(self) -> float:
        """Cluster active watts over the last interval (ground truth)."""
        total = 0.0
        for member in self.cluster.machines:
            member.machine.checkpoint()
            joules = member.machine.integrator.active_joules
            total += joules - self._last_joules.get(member.name, joules)
            self._last_joules[member.name] = joules
        return total / self.interval

    def _tick(self) -> None:
        self.ticks += 1
        now = self.cluster.simulator.now
        self.measured_watts = self._measure()
        # Degraded telemetry: any stale facility meter forces the
        # conservative cap until the watchdog reports recovery.
        self.degraded = any(
            member.facility.health.meter_state != "ok"
            for member in self.cluster.machines
        )
        if self.degraded:
            self.degraded_intervals += 1
        cap = self.effective_cap()

        if self.measured_watts > cap:
            self.over_cap_intervals += 1
            self._consecutive_over += 1
            self.max_consecutive_over = max(
                self.max_consecutive_over, self._consecutive_over
            )
            self._intervals_under = 0
            self._step(now, +1)
        else:
            self._consecutive_over = 0
            if self.measured_watts <= cap * self.step_down_headroom:
                self._intervals_under += 1
                if self._intervals_under >= self.hold_intervals:
                    self._intervals_under = 0
                    self._step(now, -1)
            else:
                # Inside the hysteresis band: hold the current rung.
                self._intervals_under = 0
        self._apply()

    def _step(self, now: float, direction: int) -> None:
        max_level = len(BROWNOUT_LADDER) - 1 if self.protector is not None else 1
        new_level = min(max_level, max(0, self.level + direction))
        if new_level == self.level:
            return
        self.level = new_level
        if direction > 0:
            self.escalations += 1
        else:
            self.deescalations += 1
        self.transitions.append(BrownoutTransition(
            at=now,
            level=new_level,
            name=BROWNOUT_LADDER[new_level],
            measured_watts=self.measured_watts,
            effective_cap=self.effective_cap(),
            direction="up" if direction > 0 else "down",
        ))
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.instant(
                now,
                "powercap",
                f"brownout.{BROWNOUT_LADDER[new_level]}",
                {
                    "level": new_level,
                    "direction": "up" if direction > 0 else "down",
                    "measured_watts": self.measured_watts,
                    "effective_cap": self.effective_cap(),
                },
            )

    def _apply(self) -> None:
        """Push the current rung into conditioners and the protector."""
        alive = [m for m in self.cluster.machines if m.alive]
        if self.level >= 1 and alive:
            share = self.effective_cap() / len(alive)
            for member in alive:
                self.conditioners[member.name].target_active_watts = share
        else:
            for conditioner in self.conditioners.values():
                conditioner.target_active_watts = float("inf")
        if self.protector is not None:
            self.protector.brownout_level = self.level

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Ladder position, hysteresis counters, and per-member state."""
        return {
            "v": 1,
            "cap_watts": self.cap_watts,
            "level": self.level,
            "ticks": self.ticks,
            "escalations": self.escalations,
            "deescalations": self.deescalations,
            "over_cap_intervals": self.over_cap_intervals,
            "degraded_intervals": self.degraded_intervals,
            "max_consecutive_over": self.max_consecutive_over,
            "measured_watts": self.measured_watts,
            "degraded": self.degraded,
            "consecutive_over": self._consecutive_over,
            "intervals_under": self._intervals_under,
            "last_joules": dict(sorted(self._last_joules.items())),
            "started": self._started,
            "transitions": [
                [t.at, t.level, t.name, t.measured_watts, t.effective_cap,
                 t.direction]
                for t in self.transitions
            ],
            "conditioners": {
                name: conditioner.snapshot_state()
                for name, conditioner in sorted(self.conditioners.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown PowerCapEnforcer snapshot version {state.get('v')!r}"
            )
        self.cap_watts = state["cap_watts"]
        self.level = state["level"]
        self.ticks = state["ticks"]
        self.escalations = state["escalations"]
        self.deescalations = state["deescalations"]
        self.over_cap_intervals = state["over_cap_intervals"]
        self.degraded_intervals = state["degraded_intervals"]
        self.max_consecutive_over = state["max_consecutive_over"]
        self.measured_watts = state["measured_watts"]
        self.degraded = state["degraded"]
        self._consecutive_over = state["consecutive_over"]
        self._intervals_under = state["intervals_under"]
        self._last_joules = dict(state["last_joules"])
        self._started = state["started"]
        self.transitions = [
            BrownoutTransition(
                at=entry[0], level=entry[1], name=entry[2],
                measured_watts=entry[3], effective_cap=entry[4],
                direction=entry[5],
            )
            for entry in state["transitions"]
        ]
        for name, conditioner_state in state["conditioners"].items():
            self.conditioners[name].restore_state(conditioner_state)

    # ------------------------------------------------------------------
    def health_stats(self) -> dict[str, float]:
        """Stable-keyed control-loop counters for chaos/CI reports.

        .. deprecated::
            Kept as a thin compatibility schema; prefer
            :meth:`publish_metrics` + ``MetricsRegistry.snapshot()``, which
            expose the same counters under the unified ``powercap_*``
            naming convention (see docs/observability.md).
        """
        return {
            "powercap_level": float(self.level),
            "powercap_cap_watts": float(self.cap_watts),
            "powercap_effective_cap": float(self.effective_cap()),
            "powercap_measured_watts": float(self.measured_watts),
            "powercap_ticks": float(self.ticks),
            "powercap_escalations": float(self.escalations),
            "powercap_deescalations": float(self.deescalations),
            "powercap_over_cap_intervals": float(self.over_cap_intervals),
            "powercap_max_consecutive_over": float(self.max_consecutive_over),
            "powercap_degraded_intervals": float(self.degraded_intervals),
            "powercap_degraded": 1.0 if self.degraded else 0.0,
            "powercap_transitions": float(len(self.transitions)),
            "powercap_conditioner_adjustments": float(
                sum(c.adjustments for c in self.conditioners.values())
            ),
        }

    def publish_metrics(self, registry=None) -> None:
        """Mirror :meth:`health_stats` into a telemetry metrics registry.

        All keys already carry the ``powercap_`` prefix and publish
        unchanged as gauges.  With no explicit ``registry`` the attached
        telemetry handle's registry is used; without either this is a
        no-op.
        """
        if registry is None:
            if self.telemetry is None:
                return
            registry = self.telemetry.registry
        for key, value in self.health_stats().items():
            registry.gauge(key).set(value)
