"""Fair request power conditioning via duty-cycle modulation (Section 3.4).

The policy maintains a system-wide *active power target*.  At every periodic
counter sample and at every request context switch, the core's duty-cycle
level is set from the *running request's* estimated full-speed power:

* per-core budget = target / (number of busy cores), so a request running
  while siblings idle enjoys a larger budget (the paper's Fig. 12 outliers);
* a request whose full-speed power fits the budget runs at level 8/8;
* a power-hungry request is clamped to
  ``level = floor(8 * budget / full_speed_power)``.

Because active power scales approximately linearly with the duty-cycle level
(Section 3.4), the full-speed power of a throttled request is recovered as
``measured power / duty ratio`` (maintained as an EWMA on the container).
Only request containers are throttled; background work runs at full speed.
"""

from __future__ import annotations

from repro.core.container import PowerContainer
from repro.core.registry import BACKGROUND_CONTAINER_ID
from repro.hardware.core import DUTY_LEVELS, Core
from repro.kernel import Kernel


class PowerConditioner:
    """Per-request duty-cycle throttling against a system power target."""

    def __init__(
        self,
        kernel: Kernel,
        target_active_watts: float,
        min_level: int = 1,
    ) -> None:
        if target_active_watts <= 0:
            raise ValueError("power target must be positive")
        if not 1 <= min_level <= DUTY_LEVELS:
            raise ValueError(f"min_level must be in [1, {DUTY_LEVELS}]")
        self.kernel = kernel
        self.machine = kernel.machine
        self.target_active_watts = target_active_watts
        self.min_level = min_level
        self.adjustments = 0

    # ------------------------------------------------------------------
    def per_core_budget(self) -> float:
        """Current per-core power budget given machine-wide occupancy."""
        busy = max(self.machine.busy_core_count, 1)
        return self.target_active_watts / busy

    def level_for(self, container: PowerContainer) -> int:
        """Duty level a request deserves under the current budget."""
        if container.id == BACKGROUND_CONTAINER_ID:
            return DUTY_LEVELS
        full_speed = container.full_speed_power_ewma
        if full_speed <= 0.0:
            return DUTY_LEVELS  # no estimate yet: run at full speed
        budget = self.per_core_budget()
        if full_speed <= budget:
            return DUTY_LEVELS
        level = int(DUTY_LEVELS * budget / full_speed)
        return max(self.min_level, min(level, DUTY_LEVELS))

    # -- facility callbacks --------------------------------------------
    def adjust(self, core: Core, container: PowerContainer) -> None:
        """Periodic-sample callback: retune the core for its request."""
        self._apply(core, self.level_for(container))

    def on_context_switch(self, core: Core, container: PowerContainer) -> None:
        """Dispatch callback: set the level for the incoming request."""
        self._apply(core, self.level_for(container))

    def _apply(self, core: Core, level: int) -> None:
        if core.duty_level != level:
            self.kernel.set_core_duty(core, level)
            self.adjustments += 1

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "target_active_watts": self.target_active_watts,
            "min_level": self.min_level,
            "adjustments": self.adjustments,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown PowerConditioner snapshot version {state.get('v')!r}"
            )
        self.target_active_watts = state["target_active_watts"]
        self.min_level = state["min_level"]
        self.adjustments = state["adjustments"]
