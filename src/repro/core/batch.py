"""Batch accounting engine: structure-of-arrays sampling across cores.

The per-event accounting path (:meth:`CoreAccountant.sample`) fires at
counter-overflow interrupts, which land at *distinct* simulated times per
core -- those events cannot be fused without changing the event schedule,
which the determinism gate forbids.  But whenever all cores of a machine
are sampled at one instant (the end-of-experiment ``Facility.flush``, a
sharded sweep's synchronous accounting tick), the front half of the
computation -- counter deltas with 48-bit wraparound, observer-overhead
corrections, and utilization metrics -- is the same arithmetic repeated
per core, and this module computes it for all cores in one vectorized
numpy pass over ``(n_cores, 7)`` arrays.

Oracle-equivalence policy
-------------------------
Every batch kernel must be **bit-identical** to the scalar arithmetic in
:meth:`CoreAccountant.sample`, which in turn reproduces the seed's
``EventVector`` path.  Elementwise numpy ops (subtract, multiply, divide,
``np.where`` selection, ``np.minimum``/``np.maximum``) apply the same IEEE
operation per lane as the scalar expressions, so columnwise vectorization
is exact -- :func:`reference_sample` is the scalar oracle the hypothesis
equivalence suite compares against.  The ``active_power`` dot product is
the one step that stays per-sample: BLAS ``dgemv`` (matrix @ vector) and
``ddot`` (row @ coef) reduce in different orders and differ in the last
ulp, so batching the model evaluation into a matmul would change report
fingerprints.  The back half therefore calls :meth:`CoreAccountant._charge`
per core, in machine core-index order (mailbox posts feed sibling
chip-share estimates, so ordering is part of the semantics).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.accounting import CoreAccountant
from repro.hardware.counters import COUNTER_WRAP

#: Leading columns of the 7-wide counter layout that are CPU events (the
#: trailing two are disk/net bytes, which have no observer overhead).
CPU_FIELDS = 5


# ---------------------------------------------------------------------------
# Vectorized kernels (bit-identical twins of the scalar sample() arithmetic)
# ---------------------------------------------------------------------------
def batch_wrap_deltas(  # hot-path
    snapshot: np.ndarray, baseline: np.ndarray
) -> np.ndarray:
    """Counter deltas with 48-bit wraparound correction, all cores at once.

    Twin of the unrolled scalar sequence ``d = s - b; if d < 0: d = d +
    COUNTER_WRAP if d < -0.5 else 0.0``: each lane applies the identical
    IEEE subtract/add, and ``np.where`` selects among identically-computed
    values, so every element matches the scalar result bit for bit.
    """
    deltas = snapshot - baseline
    wrapped = deltas + COUNTER_WRAP
    return np.where(deltas < 0.0, np.where(deltas < -0.5, wrapped, 0.0), deltas)


def batch_observer_correction(  # hot-path
    deltas: np.ndarray, observer_units: np.ndarray, pending_ops: np.ndarray
) -> np.ndarray:
    """Subtract accumulated sampling overhead from the CPU counter deltas.

    ``pending_ops`` rows must already be zeroed for cores that do not
    subtract observer overhead: a zero-op row computes ``d - unit * 0.0``
    and clamps at zero, which is the identity on the non-negative deltas
    produced by :func:`batch_wrap_deltas` -- exactly what the scalar path's
    skipped branch leaves behind.
    """
    corrected = deltas[:, :CPU_FIELDS] - observer_units * pending_ops[:, None]
    out = deltas.copy()
    out[:, :CPU_FIELDS] = np.where(corrected > 0.0, corrected, 0.0)
    return out


def batch_utilization(  # hot-path
    deltas: np.ndarray, elapsed_cycles: np.ndarray
) -> np.ndarray:
    """Per-cycle utilization metrics for all cores in one pass.

    Twin of ``mcore = min(max(d_cycles / elapsed, 0.0), 1.0)`` and the
    unclamped ``d_X / elapsed`` rates: identical elementwise divides, and
    ``np.maximum``/``np.minimum`` agree with the builtins on every input
    the pipeline produces (finite, non-negative).
    """
    metrics = deltas[:, :CPU_FIELDS] / elapsed_cycles[:, None]
    metrics[:, 0] = np.minimum(np.maximum(metrics[:, 0], 0.0), 1.0)
    return metrics


# ---------------------------------------------------------------------------
# Scalar reference oracle
# ---------------------------------------------------------------------------
def reference_sample(
    snapshot: Sequence[float],
    baseline: Sequence[float],
    dt: float,
    freq_hz: float,
    observer_unit: Optional[Sequence[float]] = None,
    pending_ops: int = 0,
) -> Optional[tuple[list[float], list[float]]]:
    """Scalar oracle for one core's front-half accounting.

    A pristine transliteration of the seed's per-sample arithmetic
    (wrapped delta -> clamped observer subtraction -> per-cycle metrics)
    over plain floats, free of any engine state.  Returns ``(deltas,
    metrics)`` -- 7 wrap-corrected counter deltas and 5 utilization
    metrics -- or ``None`` for an empty interval (``dt <= 0``).  The
    hypothesis equivalence suite runs this per core and demands bitwise
    equality with the batch kernels above.
    """
    if dt <= 0.0:
        return None
    deltas = []
    for s, b in zip(snapshot, baseline):
        d = s - b
        if d < 0.0:
            d = d + COUNTER_WRAP if d < -0.5 else 0.0
        deltas.append(d)
    if pending_ops > 0 and observer_unit is not None:
        for i in range(CPU_FIELDS):
            value = deltas[i] - observer_unit[i] * pending_ops
            deltas[i] = value if value > 0.0 else 0.0
    elapsed = freq_hz * dt
    metrics = [d / elapsed for d in deltas[:CPU_FIELDS]]
    metrics[0] = min(max(metrics[0], 0.0), 1.0)
    return deltas, metrics


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------
class BatchAccountingEngine:
    """Samples every core of one machine at a single instant, batched.

    Owns preallocated ``(n_cores, 7)`` structure-of-arrays buffers; a
    sampling pass gathers counter snapshots with explicit loops (no
    per-sample container allocation), runs the vectorized kernels once,
    and replays the back half (:meth:`CoreAccountant._charge`) per core in
    core-index order so mailbox/chip-share semantics and container-stats
    accumulation order match the sequential scalar path exactly.
    """

    def __init__(self, accountants: Iterable[CoreAccountant]) -> None:
        ordered = sorted(accountants, key=lambda a: a._core_index)
        if not ordered:
            raise ValueError("need at least one accountant")
        self._accountants = ordered
        n = len(ordered)
        self._snapshot = np.zeros((n, 7), dtype=float)
        self._baseline = np.zeros((n, 7), dtype=float)
        self._dts = np.zeros(n, dtype=float)
        self._ops = np.zeros(n, dtype=float)
        self._raw_ops = [0] * n
        units = np.zeros((n, CPU_FIELDS), dtype=float)
        freq = np.zeros(n, dtype=float)
        for i, acc in enumerate(ordered):
            units[i, 0] = acc._ob_cycles
            units[i, 1] = acc._ob_ins
            units[i, 2] = acc._ob_flops
            units[i, 3] = acc._ob_cache
            units[i, 4] = acc._ob_mem
            freq[i] = acc.core.freq_hz
        self._observer_units = units
        self._freq = freq

    def sample_all(self, now: float) -> int:  # hot-path
        """Account the open interval on every core; returns samples charged.

        Equivalent, sample for sample and bit for bit, to calling
        ``accountant.sample(now)`` on each accountant in core-index order.
        """
        accountants = self._accountants
        snapshot = self._snapshot
        baseline = self._baseline
        dts = self._dts
        ops = self._ops
        raw_ops = self._raw_ops
        i = 0
        for acc in accountants:
            bank = acc.core.counters
            totals = bank.totals
            row = snapshot[i]
            if bank.wrap:
                row[0] = totals.nonhalt_cycles % COUNTER_WRAP
                row[1] = totals.instructions % COUNTER_WRAP
                row[2] = totals.flops % COUNTER_WRAP
                row[3] = totals.cache_refs % COUNTER_WRAP
                row[4] = totals.mem_trans % COUNTER_WRAP
                row[5] = totals.disk_bytes % COUNTER_WRAP
                row[6] = totals.net_bytes % COUNTER_WRAP
            else:
                row[0] = totals.nonhalt_cycles
                row[1] = totals.instructions
                row[2] = totals.flops
                row[3] = totals.cache_refs
                row[4] = totals.mem_trans
                row[5] = totals.disk_bytes
                row[6] = totals.net_bytes
            last = acc._last
            brow = baseline[i]
            brow[0] = last[0]
            brow[1] = last[1]
            brow[2] = last[2]
            brow[3] = last[3]
            brow[4] = last[4]
            brow[5] = last[5]
            brow[6] = last[6]
            pending = acc._pending_overhead_ops
            raw_ops[i] = pending
            ops[i] = (
                pending
                if acc.observer is not None and acc.subtract_observer
                else 0
            )
            dts[i] = now - acc._last_time
            i += 1

        deltas = batch_wrap_deltas(snapshot, baseline)
        deltas = batch_observer_correction(deltas, self._observer_units, ops)
        elapsed = self._freq * dts
        metrics = batch_utilization(
            deltas, np.where(dts > 0.0, elapsed, 1.0)
        )

        charged = 0
        i = 0
        for acc in accountants:
            last = acc._last
            srow = snapshot[i]
            # Re-baseline exactly as the scalar path does on every branch.
            last[0] = srow[0]
            last[1] = srow[1]
            last[2] = srow[2]
            last[3] = srow[3]
            last[4] = srow[4]
            last[5] = srow[5]
            last[6] = srow[6]
            acc._pending_overhead_ops = 0
            dt = dts[i]
            if dt <= 0.0:
                # Empty interval: baseline advanced, clock untouched.
                i += 1
                continue
            if not acc.occupied:
                acc._last_time = now
                i += 1
                continue
            acc._last_time = now
            drow = deltas[i]
            mrow = metrics[i]
            acc._charge(
                now, float(dt),
                float(drow[0]), float(drow[1]), float(drow[2]),
                float(drow[3]), float(drow[4]), float(drow[5]),
                float(drow[6]),
                float(mrow[0]), float(mrow[1]), float(mrow[2]),
                float(mrow[3]), float(mrow[4]),
                raw_ops[i],
            )
            charged += 1
            i += 1
        return charged
