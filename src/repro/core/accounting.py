"""Per-core request power accounting (Section 3.3).

Each CPU core gets a :class:`CoreAccountant`.  At every sampling point --
request context switches on the core, periodic counter-overflow interrupts,
and in-place binding changes -- the accountant:

1. reads the core's cumulative counters and forms the delta since its last
   sample (no cross-core synchronization, per Section 3.1);
2. subtracts the estimated maintenance-induced event counts of its own
   earlier sampling work (the *observer effect* correction, Section 3.5);
3. converts the delta to per-elapsed-cycle metrics, estimates the chip
   maintenance share (Eq. 3), evaluates every configured model approach,
   and charges ``power * dt`` of energy to the bound container;
4. posts its fresh utilization to the core's mailbox for sibling reads; and
5. performs the maintenance work itself: injecting the paper-measured event
   counts (2948 cycles, 1656 instructions, 16 FLOPs, 3 LLC references) into
   the counters and the corresponding true energy into ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.chipshare import ChipShareEstimator
from repro.core.container import PowerContainer
from repro.core.model import MetricSample, PowerModel
from repro.core.registry import ContainerRegistry
from repro.hardware.core import Core
from repro.hardware.counters import wrapped_delta
from repro.hardware.events import EventVector
from repro.hardware.machine import Machine


@dataclass(frozen=True)
class ObserverEffect:
    """Cost of one container maintenance operation (Section 3.5 numbers)."""

    cycles: float = 2948.0
    instructions: float = 1656.0
    flops: float = 16.0
    cache_refs: float = 3.0
    mem_trans: float = 0.0
    #: Wall-clock cost of one maintenance operation.
    op_seconds: float = 0.95e-6

    def event_vector(self, ops: int = 1) -> EventVector:
        """Event counts induced by ``ops`` maintenance operations."""
        return EventVector(
            nonhalt_cycles=self.cycles * ops,
            instructions=self.instructions * ops,
            flops=self.flops * ops,
            cache_refs=self.cache_refs * ops,
            mem_trans=self.mem_trans * ops,
        )


@dataclass
class _Approach:
    """One accounting approach evaluated in parallel."""

    name: str
    model: PowerModel
    chipshare: ChipShareEstimator


class CoreAccountant:
    """Sampling-driven power attribution for one core."""

    def __init__(
        self,
        core: Core,
        machine: Machine,
        registry: ContainerRegistry,
        approaches: list[_Approach],
        primary: str,
        observer: Optional[ObserverEffect] = None,
        subtract_observer: bool = True,
        record_power_history: bool = False,
        telemetry=None,
        telemetry_prefix: str = "",
    ) -> None:
        if not approaches:
            raise ValueError("at least one accounting approach is required")
        names = [a.name for a in approaches]
        if primary not in names:
            raise ValueError(f"primary approach {primary!r} not in {names}")
        self.core = core
        self.machine = machine
        self.registry = registry
        self.approaches = approaches
        self.primary = primary
        self.observer = observer
        self.subtract_observer = subtract_observer
        self.record_power_history = record_power_history
        #: Optional :class:`~repro.telemetry.Telemetry` handle; when
        #: enabled, every accounting event emits the container's energy
        #: timeline (cumulative joules, chip share, observer correction).
        self.telemetry = telemetry
        self._telemetry_prefix = telemetry_prefix
        self.current_container_id: Optional[int] = None
        #: Name of the process (server stage) currently on the core; used
        #: for the per-stage breakdown (paper Fig. 4 annotations).
        self.current_stage: Optional[str] = None
        #: True while a task occupies the core.  Idle intervals advance the
        #: snapshot but are not charged to any container (and perform no
        #: maintenance work -- sampling interrupts stop on idle cores).
        self.occupied = False
        self._last_events = core.counters.read()
        self._last_time = 0.0
        self._pending_overhead_ops = 0
        self.samples_taken = 0
        # The observer-effect unit vector and the true energy of one
        # maintenance op are invariants of (observer, true model, core
        # frequency), all fixed at construction time; caching them removes
        # an EventVector build and a power-model evaluation per sample.
        if observer is not None:
            self._observer_unit = observer.event_vector(1)
            self._maintenance_joules = machine.true_model.energy_for_events(
                self._observer_unit, core.freq_hz
            )
        else:
            self._observer_unit = None
            self._maintenance_joules = 0.0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, now: float) -> Optional[MetricSample]:
        """Account the interval since the last sample on this core.

        Returns the primary-approach metric sample (``None`` for an empty
        interval), mainly for tests and the conditioning policy.
        """
        snapshot = self.core.counters.read()
        dt = now - self._last_time
        if dt <= 0.0:
            # Empty interval: re-baseline.  The snapshot already contains any
            # maintenance events injected by a sample at this same instant, so
            # the pending correction must reset with it or the next interval
            # would subtract overhead that the new baseline already absorbed.
            self._last_events = snapshot
            self._pending_overhead_ops = 0
            return None
        if not self.occupied:
            # Idle interval: nothing ran, nothing to attribute, and no
            # sampling interrupt would have fired on a real idle core.
            # Overhead events injected by the previous sample are absorbed
            # into the new baseline, so the pending correction must reset
            # with them.
            self._last_events = snapshot
            self._last_time = now
            self._pending_overhead_ops = 0
            return None

        delta = wrapped_delta(snapshot, self._last_events)
        ops = self._pending_overhead_ops
        if self.observer is not None and self.subtract_observer and ops > 0:
            overhead = (
                self._observer_unit if ops == 1 else self._observer_unit.scaled(ops)
            )
            delta.subtract(overhead, clamp=True)
        self._pending_overhead_ops = 0

        elapsed_cycles = self.core.freq_hz * dt
        mcore = min(max(delta.nonhalt_cycles / elapsed_cycles, 0.0), 1.0)
        mins = delta.instructions / elapsed_cycles
        mfloat = delta.flops / elapsed_cycles
        mcache = delta.cache_refs / elapsed_cycles
        mmem = delta.mem_trans / elapsed_cycles

        container = self.registry.get(self.current_container_id)
        energy_by_approach: dict[str, float] = {}
        primary_sample: Optional[MetricSample] = None
        for approach in self.approaches:
            share = approach.chipshare.estimate(self.core, mcore)
            metric = MetricSample(mcore, mins, mfloat, mcache, mmem, share)
            watts = approach.model.active_power(metric)
            energy_by_approach[approach.name] = watts * dt
            container.observe_power(
                approach.name,
                watts,
                duty_ratio=self.core.duty_ratio,
                update_ewma=(approach.name == self.primary),
            )
            if approach.name == self.primary:
                primary_sample = metric
                if self.record_power_history:
                    container.power_history.append((now, watts))

        container.stats.record_interval(
            now=now,
            dt=dt,
            events=delta,
            energy_by_approach=energy_by_approach,
            duty_ratio=self.core.duty_ratio,
            stage=self.current_stage,
            primary_approach=self.primary,
        )

        # Publish fresh utilization for unsynchronized sibling reads (Eq. 3).
        self.core.mailbox.post(now, mcore)

        self._last_events = snapshot
        self._last_time = now
        self.samples_taken += 1
        self._perform_maintenance_work()
        t = self.telemetry
        if t is not None and t.enabled:
            # Energy-timeline profiling (Section 3.3): one counter sample
            # per accounting event, on the charged container's track.
            tracer = t.tracer
            track = f"container:{self._telemetry_prefix}{container.id}"
            tracer.counter(
                now, track, "energy_j", container.total_energy(self.primary)
            )
            tracer.counter(now, track, "chipshare", primary_sample.mchipshare)
            if ops:
                tracer.counter(now, track, "observer_ops", float(ops))
        return primary_sample

    def sample_and_rebind(
        self,
        now: float,
        container_id: Optional[int],
        occupied: Optional[bool] = None,
        stage: Optional[str] = None,
    ) -> None:
        """Sample the closing interval, then switch the bound container.

        ``occupied`` updates the core-occupancy flag after the sample:
        ``True`` on dispatch, ``False`` on undispatch, ``None`` to keep the
        current state (in-place binding change).  ``stage`` names the
        incoming process for the per-stage breakdown.
        """
        self.sample(now)
        self.current_container_id = container_id
        if occupied is not None:
            self.occupied = occupied
            self.current_stage = stage if occupied else None

    def _perform_maintenance_work(self) -> None:
        """Charge the sampling operation's own cost to hardware truth."""
        if self.observer is None:
            return
        self.core.inject_events(self._observer_unit)
        self.machine.add_impulse_energy(
            self._maintenance_joules, core_index=self.core.index
        )
        self._pending_overhead_ops += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bound_container(self) -> PowerContainer:
        """Container currently charged for this core's activity."""
        return self.registry.get(self.current_container_id)
