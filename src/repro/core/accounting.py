"""Per-core request power accounting (Section 3.3).

Each CPU core gets a :class:`CoreAccountant`.  At every sampling point --
request context switches on the core, periodic counter-overflow interrupts,
and in-place binding changes -- the accountant:

1. reads the core's cumulative counters and forms the delta since its last
   sample (no cross-core synchronization, per Section 3.1);
2. subtracts the estimated maintenance-induced event counts of its own
   earlier sampling work (the *observer effect* correction, Section 3.5);
3. converts the delta to per-elapsed-cycle metrics, estimates the chip
   maintenance share (Eq. 3), evaluates every configured model approach,
   and charges ``power * dt`` of energy to the bound container;
4. posts its fresh utilization to the core's mailbox for sibling reads; and
5. performs the maintenance work itself: injecting the paper-measured event
   counts (2948 cycles, 1656 instructions, 16 FLOPs, 3 LLC references) into
   the counters and the corresponding true energy into ground truth.

Hot-path layout
---------------

The accountant keeps its counter baseline as a plain 7-float list
(structure-of-arrays order, matching ``EVENT_NAMES``) instead of an
:class:`~repro.hardware.events.EventVector`, and :meth:`CoreAccountant
.sample` runs the delta / wrap / observer-correction / metric arithmetic on
local floats -- the same expressions as the vector helpers
(``wrapped_delta``, ``EventVector.subtract(clamp=True)``), unrolled so no
intermediate vectors are allocated per sample.  The interval-charging back
half (:meth:`CoreAccountant._charge`) is shared with the batch accounting
engine (:mod:`repro.core.batch`), which vectorizes the front half across
all cores of a machine with numpy kernels; both entry points therefore
attribute bit-identical energy.  The reference transliteration of the
original vector-based sampler lives in :func:`repro.core.batch
.reference_sample` and anchors the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.chipshare import ChipShareEstimator
from repro.core.container import PowerContainer
from repro.core.model import MetricSample, PowerModel
from repro.core.registry import ContainerRegistry
from repro.hardware.core import Core
from repro.hardware.counters import COUNTER_WRAP
from repro.hardware.events import EventVector
from repro.hardware.machine import Machine


@dataclass(frozen=True)
class ObserverEffect:
    """Cost of one container maintenance operation (Section 3.5 numbers)."""

    cycles: float = 2948.0
    instructions: float = 1656.0
    flops: float = 16.0
    cache_refs: float = 3.0
    mem_trans: float = 0.0
    #: Wall-clock cost of one maintenance operation.
    op_seconds: float = 0.95e-6

    def event_vector(self, ops: int = 1) -> EventVector:
        """Event counts induced by ``ops`` maintenance operations."""
        return EventVector(
            nonhalt_cycles=self.cycles * ops,
            instructions=self.instructions * ops,
            flops=self.flops * ops,
            cache_refs=self.cache_refs * ops,
            mem_trans=self.mem_trans * ops,
        )


@dataclass
class _Approach:
    """One accounting approach evaluated in parallel."""

    name: str
    model: PowerModel
    chipshare: ChipShareEstimator


class CoreAccountant:
    """Sampling-driven power attribution for one core."""

    def __init__(
        self,
        core: Core,
        machine: Machine,
        registry: ContainerRegistry,
        approaches: list[_Approach],
        primary: str,
        observer: Optional[ObserverEffect] = None,
        subtract_observer: bool = True,
        record_power_history: bool = False,
        telemetry=None,
        telemetry_prefix: str = "",
    ) -> None:
        if not approaches:
            raise ValueError("at least one accounting approach is required")
        names = [a.name for a in approaches]
        if primary not in names:
            raise ValueError(f"primary approach {primary!r} not in {names}")
        self.core = core
        self.machine = machine
        self.registry = registry
        self.approaches = approaches
        self.primary = primary
        self.observer = observer
        self.subtract_observer = subtract_observer
        self.record_power_history = record_power_history
        #: Optional :class:`~repro.telemetry.Telemetry` handle; when
        #: enabled, every accounting event emits the container's energy
        #: timeline (cumulative joules, chip share, observer correction).
        self.telemetry = telemetry
        self._telemetry_prefix = telemetry_prefix
        self.current_container_id: Optional[int] = None
        #: Name of the process (server stage) currently on the core; used
        #: for the per-stage breakdown (paper Fig. 4 annotations).
        self.current_stage: Optional[str] = None
        #: True while a task occupies the core.  Idle intervals advance the
        #: snapshot but are not charged to any container (and perform no
        #: maintenance work -- sampling interrupts stop on idle cores).
        self.occupied = False
        self._last_events = core.counters.read()
        self._last_time = 0.0
        self._pending_overhead_ops = 0
        self.samples_taken = 0
        # The observer-effect unit vector and the true energy of one
        # maintenance op are invariants of (observer, true model, core
        # frequency), all fixed at construction time; caching them removes
        # an EventVector build and a power-model evaluation per sample.
        # The unit's fields are additionally unpacked to plain floats so
        # the correction and the maintenance injection run without any
        # attribute chasing per sample.
        if observer is not None:
            self._observer_unit = observer.event_vector(1)
            self._maintenance_joules = machine.true_model.energy_for_events(
                self._observer_unit, core.freq_hz
            )
            unit = self._observer_unit
            self._ob_cycles = unit.nonhalt_cycles
            self._ob_ins = unit.instructions
            self._ob_flops = unit.flops
            self._ob_cache = unit.cache_refs
            self._ob_mem = unit.mem_trans
        else:
            self._observer_unit = None
            self._maintenance_joules = 0.0
            self._ob_cycles = 0.0
            self._ob_ins = 0.0
            self._ob_flops = 0.0
            self._ob_cache = 0.0
            self._ob_mem = 0.0
        # Fixed topology facts, cached to skip lookups per sample.
        self._core_index = core.index
        self._chip_index = core.chip.index
        self._siblings = core.chip.siblings_of(core)
        # Approach evaluation plan: chip-share estimators with identical
        # configuration (mode, idle_task_check) produce identical shares
        # for the same (core, mcore) input and have no side effects, so
        # duplicates within one facility's approach list are computed once
        # per sample.  Entries are (name, model, estimator-or-None,
        # share-slot, is-primary); a ``None`` estimator reuses the slot
        # value computed by an earlier entry.
        plan: list[tuple] = []
        group_keys: list[tuple] = []
        for a in approaches:
            key = (a.chipshare.mode, a.chipshare.idle_task_check)
            if key in group_keys:
                slot = group_keys.index(key)
                estimator = None
            else:
                slot = len(group_keys)
                group_keys.append(key)
                # Mode "none" always estimates 0.0: fold it to a constant
                # (the share slot is initialized to 0.0 and never written).
                estimator = None if a.chipshare.mode == "none" else a.chipshare
            plan.append(
                (
                    a.name,
                    a.model,
                    a.model._prefix_len,
                    estimator,
                    slot,
                    a.name == primary,
                )
            )
        self._plan = plan
        self._shares = [0.0] * len(group_keys)
        # Reusable per-sample buffers: one feature row laid out over
        # ALL_FEATURES (mdisk/mnet stay 0 -- per-core accounting has no
        # peripheral metrics), and the per-approach energy dict (its key
        # set is fixed by the plan; values are overwritten every sample
        # and consumed synchronously by the container update).
        self._row = np.zeros(8, dtype=float)
        self._energy: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Counter baseline (structure-of-arrays storage)
    # ------------------------------------------------------------------
    @property
    def _last_events(self) -> EventVector:
        """Vector view of the counter baseline (compatibility shim).

        The baseline is stored as a 7-float list in ``EVENT_NAMES`` order;
        tests and tools that poke the old ``EventVector`` attribute keep
        working through this property pair.
        """
        last = self._last
        return EventVector(
            last[0], last[1], last[2], last[3], last[4], last[5], last[6]
        )

    @_last_events.setter
    def _last_events(self, events: EventVector) -> None:
        self._last = [
            events.nonhalt_cycles,
            events.instructions,
            events.flops,
            events.cache_refs,
            events.mem_trans,
            events.disk_bytes,
            events.net_bytes,
        ]

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, now: float) -> Optional[MetricSample]:  # hot-path
        """Account the interval since the last sample on this core.

        Returns the primary-approach metric sample (``None`` for an empty
        interval), mainly for tests and the conditioning policy.
        """
        core = self.core
        bank = core.counters
        totals = bank.totals
        if bank.wrap:
            s_cycles = totals.nonhalt_cycles % COUNTER_WRAP
            s_ins = totals.instructions % COUNTER_WRAP
            s_flops = totals.flops % COUNTER_WRAP
            s_cache = totals.cache_refs % COUNTER_WRAP
            s_mem = totals.mem_trans % COUNTER_WRAP
            s_disk = totals.disk_bytes % COUNTER_WRAP
            s_net = totals.net_bytes % COUNTER_WRAP
        else:
            s_cycles = totals.nonhalt_cycles
            s_ins = totals.instructions
            s_flops = totals.flops
            s_cache = totals.cache_refs
            s_mem = totals.mem_trans
            s_disk = totals.disk_bytes
            s_net = totals.net_bytes
        last = self._last
        dt = now - self._last_time
        if dt <= 0.0:
            # Empty interval: re-baseline.  The snapshot already contains any
            # maintenance events injected by a sample at this same instant, so
            # the pending correction must reset with it or the next interval
            # would subtract overhead that the new baseline already absorbed.
            last[0] = s_cycles
            last[1] = s_ins
            last[2] = s_flops
            last[3] = s_cache
            last[4] = s_mem
            last[5] = s_disk
            last[6] = s_net
            self._pending_overhead_ops = 0
            return None
        if not self.occupied:
            # Idle interval: nothing ran, nothing to attribute, and no
            # sampling interrupt would have fired on a real idle core.
            # Overhead events injected by the previous sample are absorbed
            # into the new baseline, so the pending correction must reset
            # with them.
            last[0] = s_cycles
            last[1] = s_ins
            last[2] = s_flops
            last[3] = s_cache
            last[4] = s_mem
            last[5] = s_disk
            last[6] = s_net
            self._last_time = now
            self._pending_overhead_ops = 0
            return None

        # Delta with 48-bit wraparound correction (wrapped_delta, unrolled).
        d_cycles = s_cycles - last[0]
        if d_cycles < 0.0:
            d_cycles = d_cycles + COUNTER_WRAP if d_cycles < -0.5 else 0.0
        d_ins = s_ins - last[1]
        if d_ins < 0.0:
            d_ins = d_ins + COUNTER_WRAP if d_ins < -0.5 else 0.0
        d_flops = s_flops - last[2]
        if d_flops < 0.0:
            d_flops = d_flops + COUNTER_WRAP if d_flops < -0.5 else 0.0
        d_cache = s_cache - last[3]
        if d_cache < 0.0:
            d_cache = d_cache + COUNTER_WRAP if d_cache < -0.5 else 0.0
        d_mem = s_mem - last[4]
        if d_mem < 0.0:
            d_mem = d_mem + COUNTER_WRAP if d_mem < -0.5 else 0.0
        d_disk = s_disk - last[5]
        if d_disk < 0.0:
            d_disk = d_disk + COUNTER_WRAP if d_disk < -0.5 else 0.0
        d_net = s_net - last[6]
        if d_net < 0.0:
            d_net = d_net + COUNTER_WRAP if d_net < -0.5 else 0.0

        # Observer-effect correction (EventVector.subtract(clamp=True),
        # unrolled; the disk/net overhead components are zero so their
        # clamped subtraction is the identity on the >= 0 deltas above).
        ops = self._pending_overhead_ops
        if ops > 0 and self.observer is not None and self.subtract_observer:
            value = d_cycles - self._ob_cycles * ops
            d_cycles = value if value > 0.0 else 0.0
            value = d_ins - self._ob_ins * ops
            d_ins = value if value > 0.0 else 0.0
            value = d_flops - self._ob_flops * ops
            d_flops = value if value > 0.0 else 0.0
            value = d_cache - self._ob_cache * ops
            d_cache = value if value > 0.0 else 0.0
            value = d_mem - self._ob_mem * ops
            d_mem = value if value > 0.0 else 0.0
        self._pending_overhead_ops = 0

        elapsed_cycles = core.freq_hz * dt
        mcore = min(max(d_cycles / elapsed_cycles, 0.0), 1.0)
        mins = d_ins / elapsed_cycles
        mfloat = d_flops / elapsed_cycles
        mcache = d_cache / elapsed_cycles
        mmem = d_mem / elapsed_cycles

        # Re-baseline before charging: the charge path appends this
        # sample's own maintenance events *after* the snapshot was taken.
        last[0] = s_cycles
        last[1] = s_ins
        last[2] = s_flops
        last[3] = s_cache
        last[4] = s_mem
        last[5] = s_disk
        last[6] = s_net
        self._last_time = now

        return self._charge(
            now, dt, d_cycles, d_ins, d_flops, d_cache, d_mem, d_disk, d_net,
            mcore, mins, mfloat, mcache, mmem, ops,
        )

    def _charge(  # hot-path
        self,
        now: float,
        dt: float,
        d_cycles: float,
        d_ins: float,
        d_flops: float,
        d_cache: float,
        d_mem: float,
        d_disk: float,
        d_net: float,
        mcore: float,
        mins: float,
        mfloat: float,
        mcache: float,
        mmem: float,
        ops: int,
    ) -> MetricSample:
        """Charge one sampled interval to the bound container.

        Back half of :meth:`sample`, shared with the batch accounting
        engine: model evaluation, container statistics, the Eq. 3 mailbox
        post, the maintenance work, and telemetry.  Callers must invoke it
        per core in machine core-index order -- mailbox posts feed sibling
        chip-share estimates, so ordering is part of the semantics.
        """
        core = self.core
        container = self.registry.get(self.current_container_id)
        duty_ratio = core.duty_ratio
        row = self._row
        row[0] = mcore
        row[1] = mins
        row[2] = mfloat
        row[3] = mcache
        row[4] = mmem
        shares = self._shares
        energy = self._energy
        primary_sample: Optional[MetricSample] = None
        record_history = self.record_power_history
        for name, model, k, estimator, slot, is_primary in self._plan:
            if estimator is not None:
                # Inlined ChipShareEstimator.estimate for the common
                # mailbox mode (checks in the same order as the method;
                # "none" estimators were constant-folded at plan build).
                if mcore <= 0.0:
                    shares[slot] = 0.0
                elif estimator.mode == "mailbox":
                    sibling_sum = 0.0
                    idle_check = estimator.idle_task_check
                    for sibling in self._siblings:
                        if idle_check and sibling.active_profile is None:
                            continue
                        sibling_sum += sibling.mailbox._latest.mcore
                    value = mcore / (1.0 + sibling_sum)
                    shares[slot] = value if value < 1.0 else 1.0
                else:
                    shares[slot] = estimator.estimate(core, mcore)
            share = shares[slot]
            row[5] = share
            # Inlined PowerModel.active_power_row prefix fast path (all
            # paper feature sets are canonical-order prefixes; ``k`` is the
            # prefix length, fixed at construction since a model's feature
            # set never changes).  A full-width prefix dots the row itself
            # -- slicing the whole row would only allocate an equal view.
            # ``ndarray.dot`` over ``@`` skips the __matmul__ protocol; both
            # run the same ddot kernel, so the result is bit-identical.
            if k == 8:
                watts = float(model._coef.dot(row))
                if watts < 0.0:
                    watts = 0.0
            elif k:
                watts = float(model._coef.dot(row[:k]))
                if watts < 0.0:
                    watts = 0.0
            else:
                watts = model.active_power_row(row)
            energy[name] = watts * dt
            # Inlined Container.observe_power (three calls per sample):
            # every approach records its last watts; only the primary
            # updates the full-speed conditioning EWMA.  Expressions match
            # the method body exactly (same constants, same order).
            container.last_power_watts[name] = watts
            if is_primary:
                if duty_ratio > 0.0:
                    full = watts / duty_ratio
                    ewma = container.full_speed_power_ewma
                    if ewma == 0.0:
                        container.full_speed_power_ewma = full
                    else:
                        container.full_speed_power_ewma = (
                            (1.0 - 0.3) * ewma + 0.3 * full
                        )
                primary_sample = MetricSample(
                    mcore, mins, mfloat, mcache, mmem, share
                )
                if record_history:
                    container.power_history.append((now, watts))

        container.stats.record_core_interval(
            now, dt, d_cycles, d_ins, d_flops, d_cache, d_mem, d_disk, d_net,
            energy, duty_ratio, self.current_stage, self.primary,
        )

        # Publish fresh utilization for unsynchronized sibling reads (Eq. 3).
        core.mailbox.post_trusted(now, mcore)

        self.samples_taken += 1
        # Maintenance work (observer effect): inject the op's events into
        # the counters and its true energy into ground truth.
        if self.observer is not None:
            totals = core.counters.totals
            totals.nonhalt_cycles += self._ob_cycles
            totals.instructions += self._ob_ins
            totals.flops += self._ob_flops
            totals.cache_refs += self._ob_cache
            totals.mem_trans += self._ob_mem
            self.machine.add_impulse_energy(
                self._maintenance_joules, self._core_index, self._chip_index
            )
            self._pending_overhead_ops += 1
        t = self.telemetry
        if t is not None and t.enabled:
            # Energy-timeline profiling (Section 3.3): one counter sample
            # per accounting event, on the charged container's track.
            tracer = t.tracer
            track = f"container:{self._telemetry_prefix}{container.id}"
            tracer.counter(
                now, track, "energy_j", container.total_energy(self.primary)
            )
            tracer.counter(now, track, "chipshare", primary_sample.mchipshare)
            if ops:
                tracer.counter(now, track, "observer_ops", float(ops))
        return primary_sample

    def sample_and_rebind(
        self,
        now: float,
        container_id: Optional[int],
        occupied: Optional[bool] = None,
        stage: Optional[str] = None,
    ) -> None:
        """Sample the closing interval, then switch the bound container.

        ``occupied`` updates the core-occupancy flag after the sample:
        ``True`` on dispatch, ``False`` on undispatch, ``None`` to keep the
        current state (in-place binding change).  ``stage`` names the
        incoming process for the per-stage breakdown.
        """
        self.sample(now)
        self.current_container_id = container_id
        if occupied is not None:
            self.occupied = occupied
            self.current_stage = stage if occupied else None

    def _perform_maintenance_work(self) -> None:
        """Charge the sampling operation's own cost to hardware truth.

        Retained for tests and tools; :meth:`_charge` inlines the same
        arithmetic on the hot path.
        """
        if self.observer is None:
            return
        self.core.inject_events(self._observer_unit)
        self.machine.add_impulse_energy(
            self._maintenance_joules, core_index=self.core.index
        )
        self._pending_overhead_ops += 1

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Counter baseline, interval bookkeeping, and binding state.

        The per-sample scratch buffers (``_row``, ``_energy``, ``_shares``)
        are overwritten at every sample before being read, so they carry no
        state across samples and are not captured.
        """
        return {
            "v": 1,
            "last": list(self._last),
            "last_time": self._last_time,
            "pending_overhead_ops": self._pending_overhead_ops,
            "samples_taken": self.samples_taken,
            "current_container_id": self.current_container_id,
            "current_stage": self.current_stage,
            "occupied": self.occupied,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown CoreAccountant snapshot version {state.get('v')!r}"
            )
        self._last = list(state["last"])
        self._last_time = state["last_time"]
        self._pending_overhead_ops = state["pending_overhead_ops"]
        self.samples_taken = state["samples_taken"]
        self.current_container_id = state["current_container_id"]
        self.current_stage = state["current_stage"]
        self.occupied = state["occupied"]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bound_container(self) -> PowerContainer:
        """Container currently charged for this core's activity."""
        return self.registry.get(self.current_container_id)
