"""Measurement/model trace alignment via cross-correlation (Eq. 4).

Meter readings arrive with an unknown delay (meter reporting latency plus
data-path latency; about 1 ms for the SandyBridge on-chip meter and about
1.2 s for a Wattsup meter over USB).  A poorly calibrated model may misjudge
power *levels* yet still track power *transitions*, so the correct delay is
the shift that maximizes the cross-correlation between the measurement
series and the model-estimate series::

    CrossCorr(t) = sum_i  P_measure(i) * P_model(i + t)        (Eq. 4)

All series here are uniform-period sample arrays, oldest first; delays are
expressed in sample periods (integers) or seconds (floats) as noted.
"""

from __future__ import annotations

import numpy as np


def cross_correlation(
    measured: np.ndarray, modeled: np.ndarray, delay_samples: int
) -> float:
    """Eq. 4 cross-correlation at one hypothetical delay.

    A delay of ``d`` samples means measurement sample ``i`` describes the
    interval the model estimated ``d`` samples earlier.  The score is
    normalized by the number of matching samples so different delays (with
    different overlap lengths) are comparable.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    if delay_samples < 0:
        raise ValueError("delay must be non-negative")
    if delay_samples >= len(modeled):
        return 0.0
    shifted_model = (
        modeled[: len(modeled) - delay_samples]
        if delay_samples > 0
        else modeled
    )
    n = min(len(measured), len(shifted_model))
    if n == 0:
        return 0.0
    a = measured[-n:]
    b = shifted_model[-n:]
    return float(np.dot(a, b) / n)


def correlation_curve_reference(
    measured: np.ndarray, modeled: np.ndarray, max_delay_samples: int
) -> np.ndarray:
    """Loop-form curve: one :func:`cross_correlation` call per delay.

    This is the executable definition of the curve and the test oracle for
    :func:`correlation_curve`, which computes the same thing with strided
    windows and matrix products (equal to within float rounding, ~1e-12
    relative; the two differ only in summation order).
    """
    return np.array(
        [
            cross_correlation(measured, modeled, d)
            for d in range(max_delay_samples + 1)
        ]
    )


#: Batched-dot work (delays x window width) above which the FFT method wins
#: over materializing a window matrix.
_FFT_WORK_THRESHOLD = 1 << 15


def correlation_curve(
    measured: np.ndarray,
    modeled: np.ndarray,
    max_delay_samples: int,
    method: str = "auto",
) -> np.ndarray:
    """Cross-correlation at every delay in ``[0, max_delay_samples]``.

    Vectorized replacement for :func:`correlation_curve_reference`.  Two
    strategies, selected by ``method``:

    * ``"windows"`` -- each delay's overlap is a sliding window of
      ``modeled`` (zero-padded where the overlap is partial), so the whole
      curve is one or two matrix-vector products.  Summation order matches
      a per-delay ``np.dot`` up to BLAS kernel blocking (~1e-15 relative).
    * ``"fft"`` -- the un-normalized curve is a slice of the full linear
      cross-correlation, computed with three real FFTs; O((L+M) log(L+M))
      regardless of the number of delays.  Rounding error is that of the
      FFT, ~1e-13 relative to the correlation magnitude.
    * ``"auto"`` -- ``windows`` for small batches (where its constants win
      and its result is closest to the reference), ``fft`` once the
      window-matrix work would exceed ~32k multiply-adds.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    if max_delay_samples < 0:
        raise ValueError("delay must be non-negative")
    if method not in ("auto", "windows", "fft"):
        raise ValueError(f"unknown method {method!r}")
    n_measured = len(measured)
    n_modeled = len(modeled)
    curve = np.zeros(max_delay_samples + 1)
    if n_measured == 0 or n_modeled == 0:
        return curve
    if method == "auto":
        work = (min(max_delay_samples, n_modeled - 1) + 1) * min(
            n_measured, n_modeled
        )
        method = "windows" if work <= _FFT_WORK_THRESHOLD else "fft"
    if method == "fft":
        _curve_fft(measured, modeled, max_delay_samples, curve)
    else:
        _curve_windows(measured, modeled, max_delay_samples, curve)
    return curve


def _curve_windows(
    measured: np.ndarray,
    modeled: np.ndarray,
    max_delay_samples: int,
    curve: np.ndarray,
) -> None:
    """Window-matrix curve: overlaps become rows, delays one matvec batch."""
    n_measured = len(measured)
    n_modeled = len(modeled)
    # Full overlap: n(d) == len(measured), window start = L - M - d.
    full_end = min(max_delay_samples, n_modeled - n_measured)
    if full_end >= 0:
        windows = np.lib.stride_tricks.sliding_window_view(modeled, n_measured)
        starts = n_modeled - n_measured - np.arange(full_end + 1)
        curve[: full_end + 1] = (windows[starts] @ measured) / n_measured
    # Partial overlap: n(d) = L - d < M, matched against measured's tail.
    part_start = max(0, n_modeled - n_measured + 1)
    part_end = min(max_delay_samples, n_modeled - 1)
    if part_start <= part_end:
        overlaps = n_modeled - np.arange(part_start, part_end + 1)
        width = int(overlaps[0])
        padded = np.concatenate([np.zeros(width), modeled[:width]])
        windows = np.lib.stride_tricks.sliding_window_view(padded, width)
        # The row for overlap n starts at index n: ``width - n`` zeros, then
        # ``modeled[:n]`` aligned against the last n measured samples.
        dots = windows[overlaps] @ measured[n_measured - width:]
        curve[part_start : part_end + 1] = dots / overlaps


def _curve_fft(
    measured: np.ndarray,
    modeled: np.ndarray,
    max_delay_samples: int,
    curve: np.ndarray,
) -> None:
    """FFT curve: every Eq. 4 numerator is one lag of the full correlation.

    ``numerator(d) = sum_i measured[i] * modeled[i + L - M - d]``, i.e. lag
    ``L - M - d`` of the linear cross-correlation, which equals index
    ``L - 1 - d`` of ``convolve(modeled, reversed(measured))``.
    """
    n_measured = len(measured)
    n_modeled = len(modeled)
    size = 1 << (n_modeled + n_measured - 1).bit_length()
    spectrum = np.fft.rfft(modeled, size) * np.fft.rfft(measured[::-1], size)
    conv = np.fft.irfft(spectrum, size)
    dmax = min(max_delay_samples, n_modeled - 1)
    delays = np.arange(dmax + 1)
    overlaps = np.minimum(n_measured, n_modeled - delays)
    curve[: dmax + 1] = conv[n_modeled - 1 - delays] / overlaps


def estimate_delay(
    measured: np.ndarray,
    modeled: np.ndarray,
    max_delay_samples: int,
) -> int:
    """Most likely measurement delay, in sample periods.

    Fluctuation *patterns* drive the alignment, so both series are centered
    (mean-subtracted) before correlating; otherwise a large DC component
    rewards delay 0 regardless of pattern match.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    measured_c = measured - measured.mean() if len(measured) else measured
    modeled_c = modeled - modeled.mean() if len(modeled) else modeled
    curve = correlation_curve(measured_c, modeled_c, max_delay_samples)
    return int(np.argmax(curve))


def align_series(
    measured: np.ndarray,
    modeled: np.ndarray,
    delay_samples: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair each measurement with the model sample it actually describes.

    Returns ``(measured', modeled')`` arrays of equal length where
    ``measured'[i]`` and ``modeled'[i]`` cover the same physical interval.
    These pairs feed the online recalibration regression.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    if delay_samples < 0:
        raise ValueError("delay must be non-negative")
    if delay_samples > 0:
        modeled = modeled[: len(modeled) - delay_samples]
    n = min(len(measured), len(modeled))
    if n == 0:
        return np.array([]), np.array([])
    return measured[-n:], modeled[-n:]
