"""Measurement/model trace alignment via cross-correlation (Eq. 4).

Meter readings arrive with an unknown delay (meter reporting latency plus
data-path latency; about 1 ms for the SandyBridge on-chip meter and about
1.2 s for a Wattsup meter over USB).  A poorly calibrated model may misjudge
power *levels* yet still track power *transitions*, so the correct delay is
the shift that maximizes the cross-correlation between the measurement
series and the model-estimate series::

    CrossCorr(t) = sum_i  P_measure(i) * P_model(i + t)        (Eq. 4)

All series here are uniform-period sample arrays, oldest first; delays are
expressed in sample periods (integers) or seconds (floats) as noted.
"""

from __future__ import annotations

import numpy as np


def cross_correlation(
    measured: np.ndarray, modeled: np.ndarray, delay_samples: int
) -> float:
    """Eq. 4 cross-correlation at one hypothetical delay.

    A delay of ``d`` samples means measurement sample ``i`` describes the
    interval the model estimated ``d`` samples earlier.  The score is
    normalized by the number of matching samples so different delays (with
    different overlap lengths) are comparable.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    if delay_samples < 0:
        raise ValueError("delay must be non-negative")
    if delay_samples >= len(modeled):
        return 0.0
    shifted_model = (
        modeled[: len(modeled) - delay_samples]
        if delay_samples > 0
        else modeled
    )
    n = min(len(measured), len(shifted_model))
    if n == 0:
        return 0.0
    a = measured[-n:]
    b = shifted_model[-n:]
    return float(np.dot(a, b) / n)


def correlation_curve(
    measured: np.ndarray, modeled: np.ndarray, max_delay_samples: int
) -> np.ndarray:
    """Cross-correlation at every delay in ``[0, max_delay_samples]``."""
    return np.array(
        [
            cross_correlation(measured, modeled, d)
            for d in range(max_delay_samples + 1)
        ]
    )


def estimate_delay(
    measured: np.ndarray,
    modeled: np.ndarray,
    max_delay_samples: int,
) -> int:
    """Most likely measurement delay, in sample periods.

    Fluctuation *patterns* drive the alignment, so both series are centered
    (mean-subtracted) before correlating; otherwise a large DC component
    rewards delay 0 regardless of pattern match.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    measured_c = measured - measured.mean() if len(measured) else measured
    modeled_c = modeled - modeled.mean() if len(modeled) else modeled
    curve = correlation_curve(measured_c, modeled_c, max_delay_samples)
    return int(np.argmax(curve))


def align_series(
    measured: np.ndarray,
    modeled: np.ndarray,
    delay_samples: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pair each measurement with the model sample it actually describes.

    Returns ``(measured', modeled')`` arrays of equal length where
    ``measured'[i]`` and ``modeled'[i]`` cover the same physical interval.
    These pairs feed the online recalibration regression.
    """
    measured = np.asarray(measured, dtype=float)
    modeled = np.asarray(modeled, dtype=float)
    if delay_samples < 0:
        raise ValueError("delay must be non-negative")
    if delay_samples > 0:
        modeled = modeled[: len(modeled) - delay_samples]
    n = min(len(measured), len(modeled))
    if n == 0:
        return np.array([]), np.array([])
    return measured[-n:], modeled[-n:]
