"""Per-request energy budgets (Cinder-style control, applied to requests).

The paper's related work highlights Cinder's energy abstractions
(isolation, delegation, subdivision) for mobile devices; power containers
make the analogous *server-side* control possible at request granularity.
:class:`EnergyBudgetConditioner` gives each container an energy allowance:

* while a request is within budget it runs at full speed;
* once its attributed energy exceeds the allowance, its execution is
  clamped to a low duty-cycle level (it still completes, slowly -- a
  gentler policy than killing, appropriate for requests that may hold
  locks or transactions);
* budgets can be assigned per request type, with delegation: a container
  may be granted extra budget at runtime.

This composes with the facility exactly like the Section 3.4 conditioner
(same ``adjust``/``on_context_switch`` interface).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.core.container import PowerContainer
from repro.core.registry import BACKGROUND_CONTAINER_ID
from repro.hardware.core import DUTY_LEVELS, Core
from repro.kernel import Kernel


class EnergyBudgetConditioner:
    """Throttles requests that exhaust their energy allowance."""

    def __init__(
        self,
        kernel: Kernel,
        default_budget_joules: float,
        approach: str = "recal",
        budget_for: Optional[Callable[[PowerContainer], float]] = None,
        exhausted_duty_level: int = 1,
    ) -> None:
        if default_budget_joules <= 0:
            raise ValueError("default budget must be positive")
        if not 1 <= exhausted_duty_level <= DUTY_LEVELS:
            raise ValueError(
                f"duty level must be in [1, {DUTY_LEVELS}]"
            )
        self.kernel = kernel
        self.approach = approach
        self.default_budget_joules = default_budget_joules
        self.budget_for = budget_for
        self.exhausted_duty_level = exhausted_duty_level
        #: Extra budget granted at runtime (delegation), per container id.
        self._grants: dict[int, float] = {}
        self.exhausted: set[int] = set()

    # ------------------------------------------------------------------
    def budget_of(self, container: PowerContainer) -> float:
        """Total allowance of a container (base + runtime grants)."""
        base = (
            self.budget_for(container)
            if self.budget_for is not None
            else self.default_budget_joules
        )
        return base + self._grants.get(container.id, 0.0)

    def remaining(self, container: PowerContainer) -> float:
        """Unused allowance (can be negative once exceeded)."""
        return self.budget_of(container) - container.total_energy(self.approach)

    def grant(self, container: PowerContainer, joules: float) -> None:
        """Delegate extra energy to a container at runtime.

        Amounts must be finite and non-negative: a NaN grant would poison
        every later ``remaining()`` comparison for the container (NaN
        compares false, so the request would silently run unthrottled
        forever), and an infinite one is subdivision without a subdivider.
        """
        if not math.isfinite(joules) or joules < 0:
            raise ValueError(
                f"grants must be finite and non-negative, got {joules!r}"
            )
        self._grants[container.id] = (
            self._grants.get(container.id, 0.0) + joules
        )
        if self.remaining(container) > 0:
            self.exhausted.discard(container.id)

    def revoke_grant(
        self, container: PowerContainer, joules: Optional[float] = None
    ) -> float:
        """Take back runtime-granted energy (the inverse of :meth:`grant`).

        Revokes ``joules`` of the container's outstanding grants (all of
        them when ``None``), never more than was actually granted -- base
        budgets are not revocable, only delegated extras.  Returns the
        amount actually revoked.  A container pushed back over its
        allowance is throttled again from the next conditioning callback.
        """
        if joules is not None and (not math.isfinite(joules) or joules < 0):
            raise ValueError(
                f"revocations must be finite and non-negative, got {joules!r}"
            )
        outstanding = self._grants.get(container.id, 0.0)
        revoked = outstanding if joules is None else min(joules, outstanding)
        if revoked <= 0.0:
            return 0.0
        remaining_grant = outstanding - revoked
        if remaining_grant > 0.0:
            self._grants[container.id] = remaining_grant
        else:
            self._grants.pop(container.id, None)
        if self.remaining(container) <= 0:
            self.exhausted.add(container.id)
        return revoked

    def _level_for(self, container: PowerContainer) -> int:
        if container.id == BACKGROUND_CONTAINER_ID:
            return DUTY_LEVELS
        if self.remaining(container) <= 0.0:
            self.exhausted.add(container.id)
            return self.exhausted_duty_level
        self.exhausted.discard(container.id)
        return DUTY_LEVELS

    # -- facility conditioner interface ---------------------------------
    def adjust(self, core: Core, container: PowerContainer) -> None:
        level = self._level_for(container)
        if core.duty_level != level:
            self.kernel.set_core_duty(core, level)

    def on_context_switch(self, core: Core, container: PowerContainer) -> None:
        self.adjust(core, container)
