"""Online model recalibration from aligned measurements (Section 3.2).

Aligned (measurement, model-metrics) pairs are appended to the original
offline calibration samples and the linear model is refitted with
least-square regression, weighing offline and online samples equally in the
square-error minimization target -- the paper's stated policy.  The refitted
coefficients replace the live model's, so subsequent per-request accounting
immediately benefits (validation approach #3, Fig. 8).

The paper reports one recalibration costs about 16 microseconds of linear
algebra; :data:`RECALIBRATION_CPU_SECONDS` records that figure for the
overhead assessment benchmark.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.model import PowerModel

#: Paper-reported CPU cost of one least-square refit (Section 3.5).
RECALIBRATION_CPU_SECONDS = 16e-6


class OnlineRecalibrator:
    """Maintains calibration samples and refits a live model on demand."""

    def __init__(
        self,
        model: PowerModel,
        offline_samples: np.ndarray,
        offline_watts: np.ndarray,
        max_online_samples: int = 2000,
        offline_weight: float = 1.0,
        online_weight: float = 1.0,
    ) -> None:
        offline_samples = np.asarray(offline_samples, dtype=float)
        offline_watts = np.asarray(offline_watts, dtype=float)
        if offline_samples.ndim != 2 or offline_samples.shape[1] != len(model.features):
            raise ValueError("offline sample matrix does not match model features")
        if offline_samples.shape[0] != offline_watts.shape[0]:
            raise ValueError("offline sample and power counts differ")
        self.model = model
        self._offline_X = offline_samples
        self._offline_y = offline_watts
        self._online: deque[tuple[np.ndarray, float]] = deque(
            maxlen=max_online_samples
        )
        self.offline_weight = offline_weight
        self.online_weight = online_weight
        self.recalibration_count = 0

    @property
    def online_sample_count(self) -> int:
        """Number of online samples currently retained."""
        return len(self._online)

    def add_pairs(self, metric_rows: np.ndarray, measured_watts: np.ndarray) -> None:
        """Add aligned online (metrics, measured active power) pairs."""
        metric_rows = np.asarray(metric_rows, dtype=float)
        measured_watts = np.asarray(measured_watts, dtype=float)
        if metric_rows.ndim != 2 or metric_rows.shape[1] != len(self.model.features):
            raise ValueError("online sample matrix does not match model features")
        for row, watts in zip(metric_rows, measured_watts):
            self._online.append((row.copy(), float(watts)))

    def recalibrate(self) -> np.ndarray:
        """Refit the model from offline + online samples; returns new coefs.

        With no online samples this is a no-op returning current
        coefficients (the offline fit is already optimal for offline data).
        """
        if not self._online:
            return self.model.coefficients
        online_X = np.vstack([row for row, _ in self._online])
        online_y = np.array([w for _, w in self._online])
        X = np.vstack([self._offline_X, online_X])
        y = np.concatenate([self._offline_y, online_y])
        weights = np.concatenate(
            [
                np.full(len(self._offline_y), self.offline_weight),
                np.full(len(online_y), self.online_weight),
            ]
        )
        fitted = PowerModel.fit(
            X,
            y,
            self.model.features,
            idle_watts=self.model.idle_watts,
            label=self.model.label,
            sample_weights=weights,
        )
        self.model.update_coefficients(fitted.coefficients)
        self.recalibration_count += 1
        return self.model.coefficients
