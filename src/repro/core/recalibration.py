"""Online model recalibration from aligned measurements (Section 3.2).

Aligned (measurement, model-metrics) pairs are appended to the original
offline calibration samples and the linear model is refitted with
least-square regression, weighing offline and online samples equally in the
square-error minimization target -- the paper's stated policy.  The refitted
coefficients replace the live model's, so subsequent per-request accounting
immediately benefits (validation approach #3, Fig. 8).

Real meters misbehave: they deliver NaN readings after firmware hiccups,
negative deltas across counter resets, and wild spikes while flapping.  Two
defenses keep a bad meter from poisoning the live model:

* :meth:`OnlineRecalibrator.add_pairs` rejects non-finite or negative
  measured watts and non-finite metric rows before they enter the sample
  window (``rejected_sample_count`` tracks how many were discarded);
* a :class:`RecalibrationGuard` validates every candidate refit -- finite
  coefficients, bounded drift from the last accepted fit, and no large
  regression of the held-out (offline-calibration) error -- and rolls the
  model back to the last good coefficients with exponential backoff when a
  refit is rejected.

The paper reports one recalibration costs about 16 microseconds of linear
algebra; :data:`RECALIBRATION_CPU_SECONDS` records that figure for the
overhead assessment benchmark.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.core.model import PowerModel

#: Paper-reported CPU cost of one least-square refit (Section 3.5).
RECALIBRATION_CPU_SECONDS = 16e-6


class RecalibrationGuard:
    """Validates candidate refits and backs off after rejections.

    A candidate coefficient vector is accepted only when

    1. every coefficient is finite,
    2. its drift from the last accepted vector is bounded
       (``||c_new - c_good||_2 <= max_relative_drift * (||c_good||_2 + 1)``),
       and
    3. its RMSE on the held-out offline calibration set does not regress
       by more than ``max_error_regression``x relative to the last accepted
       vector's RMSE.  The offline fit is often near-exact (RMSE ~ 0), which
       would make any ratio test vacuous, so the limit has a floor of
       ``error_floor_fraction`` of the mean held-out power: a refit that
       moves offline error within that band is a legitimate adaptation to
       online conditions, not a regression.

    After a rejection the guard tells the recalibrator to skip the next
    ``backoff`` refit rounds; the backoff doubles on consecutive rejections
    up to ``backoff_max`` and resets to ``backoff_initial`` on acceptance --
    so a persistently sick meter costs almost no refit work, but a healthy
    meter re-engages quickly.
    """

    def __init__(
        self,
        max_relative_drift: float = 10.0,
        max_error_regression: float = 2.0,
        error_floor_fraction: float = 0.15,
        error_floor_watts: float = 0.5,
        backoff_initial: int = 1,
        backoff_max: int = 64,
    ) -> None:
        if max_relative_drift <= 0 or max_error_regression <= 0:
            raise ValueError("guard bounds must be positive")
        if backoff_initial < 1 or backoff_max < backoff_initial:
            raise ValueError("backoff range must satisfy 1 <= initial <= max")
        self.max_relative_drift = max_relative_drift
        self.max_error_regression = max_error_regression
        self.error_floor_fraction = error_floor_fraction
        self.error_floor_watts = error_floor_watts
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.accepted_count = 0
        self.rejected_count = 0
        self.skipped_count = 0
        #: Reason string of the most recent rejection (diagnostics).
        self.last_rejection: Optional[str] = None
        #: Last accepted coefficient vector (None until the first accept).
        self.last_good: Optional[np.ndarray] = None
        self._backoff = backoff_initial
        self._skip_remaining = 0

    # ------------------------------------------------------------------
    def should_skip(self) -> bool:
        """True while a post-rejection backoff window is active."""
        if self._skip_remaining > 0:
            self._skip_remaining -= 1
            self.skipped_count += 1
            return True
        return False

    def evaluate(
        self,
        candidate: np.ndarray,
        current: np.ndarray,
        holdout_X: np.ndarray,
        holdout_y: np.ndarray,
    ) -> bool:
        """Accept or reject a candidate refit against the current vector."""
        reason = self._validate(candidate, current, holdout_X, holdout_y)
        if reason is None:
            self.accepted_count += 1
            self.last_good = np.asarray(candidate, dtype=float).copy()
            self._backoff = self.backoff_initial
            return True
        self.rejected_count += 1
        self.last_rejection = reason
        self._skip_remaining = self._backoff
        self._backoff = min(self._backoff * 2, self.backoff_max)
        return False

    def _validate(
        self,
        candidate: np.ndarray,
        current: np.ndarray,
        holdout_X: np.ndarray,
        holdout_y: np.ndarray,
    ) -> Optional[str]:
        candidate = np.asarray(candidate, dtype=float)
        current = np.asarray(current, dtype=float)
        if not np.isfinite(candidate).all():
            return "non-finite coefficients"
        drift = float(np.linalg.norm(candidate - current))
        allowed = self.max_relative_drift * (float(np.linalg.norm(current)) + 1.0)
        if drift > allowed:
            return f"coefficient drift {drift:.3g} exceeds bound {allowed:.3g}"
        current_rmse = _rmse(holdout_X, current, holdout_y)
        candidate_rmse = _rmse(holdout_X, candidate, holdout_y)
        limit = max(
            current_rmse * self.max_error_regression,
            self.error_floor_fraction * float(np.mean(np.abs(holdout_y))),
            self.error_floor_watts,
        )
        if candidate_rmse > limit:
            return (
                f"held-out RMSE {candidate_rmse:.3g} W regresses past "
                f"{limit:.3g} W"
            )
        return None

    def export_stats(self) -> dict[str, float]:
        """Counters for health reporting (merged by the facility)."""
        return {
            "guard_accepted": float(self.accepted_count),
            "guard_rejected": float(self.rejected_count),
            "guard_skipped": float(self.skipped_count),
        }

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "accepted_count": self.accepted_count,
            "rejected_count": self.rejected_count,
            "skipped_count": self.skipped_count,
            "last_rejection": self.last_rejection,
            "last_good": (
                self.last_good.tolist() if self.last_good is not None else None
            ),
            "backoff": self._backoff,
            "skip_remaining": self._skip_remaining,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown RecalibrationGuard snapshot version {state.get('v')!r}"
            )
        self.accepted_count = state["accepted_count"]
        self.rejected_count = state["rejected_count"]
        self.skipped_count = state["skipped_count"]
        self.last_rejection = state["last_rejection"]
        self.last_good = (
            np.asarray(state["last_good"], dtype=float)
            if state["last_good"] is not None
            else None
        )
        self._backoff = state["backoff"]
        self._skip_remaining = state["skip_remaining"]


def _rmse(X: np.ndarray, coef: np.ndarray, y: np.ndarray) -> float:
    residual = X @ coef - y
    return float(np.sqrt(np.mean(residual * residual)))


class OnlineRecalibrator:
    """Maintains calibration samples and refits a live model on demand."""

    def __init__(
        self,
        model: PowerModel,
        offline_samples: np.ndarray,
        offline_watts: np.ndarray,
        max_online_samples: int = 2000,
        offline_weight: float = 1.0,
        online_weight: float = 1.0,
        guard: Optional[RecalibrationGuard] = None,
    ) -> None:
        offline_samples = np.asarray(offline_samples, dtype=float)
        offline_watts = np.asarray(offline_watts, dtype=float)
        if offline_samples.ndim != 2 or offline_samples.shape[1] != len(model.features):
            raise ValueError("offline sample matrix does not match model features")
        if offline_samples.shape[0] != offline_watts.shape[0]:
            raise ValueError("offline sample and power counts differ")
        self.model = model
        self._offline_X = offline_samples
        self._offline_y = offline_watts
        self._online: deque[tuple[np.ndarray, float]] = deque(
            maxlen=max_online_samples
        )
        self.offline_weight = offline_weight
        self.online_weight = online_weight
        self.guard = guard
        #: Coefficients the model was built with (the offline fit) -- the
        #: fallback of last resort when no refit was ever accepted.
        self.offline_coefficients = model.coefficients
        self.recalibration_count = 0
        #: Online samples rejected at ingestion (non-finite or negative).
        self.rejected_sample_count = 0
        #: Refits vetoed by the guard (model kept its last good vector).
        self.rolled_back_count = 0

    @property
    def online_sample_count(self) -> int:
        """Number of online samples currently retained."""
        return len(self._online)

    def add_pairs(self, metric_rows: np.ndarray, measured_watts: np.ndarray) -> None:
        """Add aligned online (metrics, measured active power) pairs.

        Pairs with non-finite metric rows, or non-finite or negative
        measured watts, are discarded and counted: one NaN sample would
        otherwise poison every subsequent least-square refit (NaN in, NaN
        coefficients out), and negative active power is physically
        meaningless (a meter glitch, not a measurement).
        """
        metric_rows = np.asarray(metric_rows, dtype=float)
        measured_watts = np.asarray(measured_watts, dtype=float)
        if metric_rows.ndim != 2 or metric_rows.shape[1] != len(self.model.features):
            raise ValueError("online sample matrix does not match model features")
        for row, watts in zip(metric_rows, measured_watts):
            watts = float(watts)
            if not (np.isfinite(watts) and watts >= 0.0 and np.isfinite(row).all()):
                self.rejected_sample_count += 1
                continue
            self._online.append((row.copy(), watts))

    def last_good_coefficients(self) -> np.ndarray:
        """The most recent trusted coefficient vector.

        The guard's last accepted vector when one exists, the offline fit
        otherwise.  Meter-health watchdogs restore this on fallback.
        """
        if self.guard is not None and self.guard.last_good is not None:
            return self.guard.last_good.copy()
        return self.offline_coefficients.copy()

    def recalibrate(self) -> np.ndarray:
        """Refit the model from offline + online samples; returns new coefs.

        With no online samples this is a no-op returning current
        coefficients (the offline fit is already optimal for offline data).
        When a :class:`RecalibrationGuard` is attached, the candidate fit is
        validated first; a rejected candidate leaves the live model on its
        current (last good) coefficients and starts the guard's backoff.
        """
        if not self._online:
            return self.model.coefficients
        if self.guard is not None and self.guard.should_skip():
            return self.model.coefficients
        online_X = np.vstack([row for row, _ in self._online])
        online_y = np.array([w for _, w in self._online])
        X = np.vstack([self._offline_X, online_X])
        y = np.concatenate([self._offline_y, online_y])
        weights = np.concatenate(
            [
                np.full(len(self._offline_y), self.offline_weight),
                np.full(len(online_y), self.online_weight),
            ]
        )
        fitted = PowerModel.fit(
            X,
            y,
            self.model.features,
            idle_watts=self.model.idle_watts,
            label=self.model.label,
            sample_weights=weights,
        )
        candidate = fitted.coefficients
        if self.guard is not None and not self.guard.evaluate(
            candidate, self.model.coefficients, self._offline_X, self._offline_y
        ):
            self.rolled_back_count += 1
            return self.model.coefficients
        self.model.update_coefficients(candidate)
        self.recalibration_count += 1
        return self.model.coefficients

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Online sample window, counters, live and guard coefficients.

        The offline calibration matrix is construction-time input (rebuilt
        identically on replay) and deliberately not captured.
        """
        return {
            "v": 1,
            "online": [
                [row.tolist(), watts] for row, watts in self._online
            ],
            "recalibration_count": self.recalibration_count,
            "rejected_sample_count": self.rejected_sample_count,
            "rolled_back_count": self.rolled_back_count,
            "model_coefficients": self.model.coefficients.tolist(),
            "guard": (
                self.guard.snapshot_state() if self.guard is not None else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown OnlineRecalibrator snapshot version {state.get('v')!r}"
            )
        self._online.clear()
        for row, watts in state["online"]:
            self._online.append((np.asarray(row, dtype=float), watts))
        self.recalibration_count = state["recalibration_count"]
        self.rejected_sample_count = state["rejected_sample_count"]
        self.rolled_back_count = state["rolled_back_count"]
        self.model.update_coefficients(
            np.asarray(state["model_coefficients"], dtype=float)
        )
        if self.guard is not None and state["guard"] is not None:
            self.guard.restore_state(state["guard"])
