"""Chip-wide DVFS power capping -- the contrast case to power containers.

Before per-request duty-cycle throttling, the standard way to cap a
multicore server's power was package-level frequency/voltage scaling.  The
:class:`DvfsConditioner` implements that baseline: a proportional
controller that steps each chip's P-state down when the machine's estimated
active power exceeds the target, and back up when there is headroom.

Because the knob is *chip-wide*, every request on the chip slows down when
a single power virus drives the total up -- the indiscriminate penalty the
paper's container-specific duty modulation avoids (Section 3.4).  The
``bench_ablation_dvfs`` benchmark quantifies the fairness difference.
"""

from __future__ import annotations

from repro.hardware.chip import DVFS_SCALES
from repro.kernel import Kernel


class DvfsConditioner:
    """Machine power capping via per-chip frequency scaling.

    Plugs into the facility's conditioner interface (``adjust`` /
    ``on_context_switch``) but ignores the per-request information -- it
    only looks at the machine-wide power estimate, as a container-oblivious
    governor would.
    """

    def __init__(
        self,
        kernel: Kernel,
        target_active_watts: float,
        headroom: float = 0.97,
    ) -> None:
        if target_active_watts <= 0:
            raise ValueError("power target must be positive")
        self.kernel = kernel
        self.machine = kernel.machine
        self.target_active_watts = target_active_watts
        self.headroom = headroom
        self.adjustments = 0

    # ------------------------------------------------------------------
    def _estimated_active_watts(self) -> float:
        """Machine-wide power estimate from the facility's last samples.

        Sums the per-core bound containers' most recent power estimates --
        the same information source the fair conditioner uses, aggregated.
        """
        facility = self.kernel.hooks
        total = 0.0
        for accountant in getattr(facility, "accountants", {}).values():
            if not accountant.occupied:
                continue
            container = accountant.bound_container
            for watts in container.last_power_watts.values():
                total += watts
                break
        return total

    def _step(self, chip, direction: int) -> None:
        scales = list(DVFS_SCALES)
        index = scales.index(chip.freq_scale)
        new_index = min(max(index + direction, 0), len(scales) - 1)
        if new_index != index:
            self.kernel.set_chip_frequency(chip, scales[new_index])
            self.adjustments += 1

    def _govern(self) -> None:
        estimate = self._estimated_active_watts()
        if estimate <= 0:
            return
        for chip in self.machine.chips:
            if estimate > self.target_active_watts:
                self._step(chip, +1)   # slower P-state
            elif estimate < self.target_active_watts * self.headroom:
                self._step(chip, -1)   # faster P-state

    # -- facility conditioner interface ---------------------------------
    def adjust(self, core, container) -> None:
        self._govern()

    def on_context_switch(self, core, container) -> None:
        # Chip-wide governor: nothing request-specific to do at dispatch.
        pass
