"""Power anomaly detection: pinpointing power spikes to requests.

The paper motivates power containers with the ability to "pinpoint the
sources of power spikes and anomalies" (Section 1) -- extreme
power-consuming tasks ("power viruses") may appear accidentally or be
devised maliciously, and per-client attribution is what lets the operator
identify them instead of merely observing a hot machine.

:class:`PowerAnomalyDetector` watches per-request power estimates as the
facility produces them and maintains a robust baseline (median + MAD of
recent request power).  A container whose sustained power exceeds the
baseline by a configurable number of deviations is flagged, with the
evidence (its power, the population baseline, its event profile) retained
for the operator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.container import PowerContainer
from repro.core.registry import BACKGROUND_CONTAINER_ID


@dataclass
class AnomalyReport:
    """Evidence for one flagged container."""

    container_id: int
    label: str
    detected_at: float
    power_watts: float
    baseline_watts: float
    deviations: float
    meta: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"[{self.detected_at:.3f}s] container #{self.container_id} "
            f"({self.label}): {self.power_watts:.1f} W vs baseline "
            f"{self.baseline_watts:.1f} W ({self.deviations:.1f} deviations)"
        )


class PowerAnomalyDetector:
    """Flags requests whose power is anomalous against the recent population.

    Call :meth:`observe` with each fresh per-request power estimate (the
    facility's conditioner callback path is a natural hook); completed
    normal requests feed the baseline, and sustained outliers are flagged
    once per container.
    """

    def __init__(
        self,
        threshold_deviations: float = 5.0,
        baseline_window: int = 200,
        min_baseline_samples: int = 20,
        min_observations: int = 3,
    ) -> None:
        if threshold_deviations <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_deviations = threshold_deviations
        self.min_baseline_samples = min_baseline_samples
        self.min_observations = min_observations
        self._baseline: deque[float] = deque(maxlen=baseline_window)
        self._suspect_counts: dict[int, int] = {}
        self.reports: list[AnomalyReport] = []
        self._flagged: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def baseline_watts(self) -> Optional[float]:
        """Robust location of the recent request-power population."""
        if len(self._baseline) < self.min_baseline_samples:
            return None
        return float(np.median(self._baseline))

    @property
    def baseline_mad_watts(self) -> Optional[float]:
        """Robust scale (median absolute deviation) of the population."""
        if len(self._baseline) < self.min_baseline_samples:
            return None
        arr = np.asarray(self._baseline)
        mad = float(np.median(np.abs(arr - np.median(arr))))
        # Floor the scale at the watt level: chip-share attribution makes a
        # lone request's instantaneous power legitimately swing by a few
        # watts as siblings come and go.
        return max(mad, 1.0)

    def observe(
        self, container: PowerContainer, watts: float, now: float
    ) -> Optional[AnomalyReport]:
        """Feed one power observation; returns a report if newly flagged."""
        if container.id == BACKGROUND_CONTAINER_ID:
            return None
        baseline = self.baseline_watts
        mad = self.baseline_mad_watts
        if baseline is None or mad is None:
            self._baseline.append(watts)
            return None
        deviations = (watts - baseline) / mad
        if deviations < self.threshold_deviations:
            self._baseline.append(watts)
            self._suspect_counts.pop(container.id, None)
            return None
        # Outlier: require sustained evidence before flagging, and flag a
        # container at most once.  Anomalous samples do NOT join the
        # baseline (they would poison it).
        count = self._suspect_counts.get(container.id, 0) + 1
        self._suspect_counts[container.id] = count
        if count < self.min_observations or container.id in self._flagged:
            return None
        self._flagged.add(container.id)
        report = AnomalyReport(
            container_id=container.id,
            label=container.label,
            detected_at=now,
            power_watts=watts,
            baseline_watts=baseline,
            deviations=deviations,
            meta=dict(container.meta),
        )
        self.reports.append(report)
        return report

    def is_flagged(self, container_id: int) -> bool:
        """True when the container has been reported as anomalous."""
        return container_id in self._flagged


class DetectingConditionerBridge:
    """Adapter: runs a detector on the facility's conditioning callbacks.

    Install via ``facility.attach_conditioner(bridge)``.  The bridge feeds
    every per-request power estimate to the detector and, optionally,
    delegates to a real :class:`~repro.core.conditioning.PowerConditioner`
    so detection and capping can run together.
    """

    def __init__(self, detector: PowerAnomalyDetector, simulator,
                 conditioner=None) -> None:
        self.detector = detector
        self.simulator = simulator
        self.conditioner = conditioner

    def _feed(self, container: PowerContainer) -> None:
        watts = container.last_power_watts.get("recal")
        if watts is None and container.last_power_watts:
            watts = next(iter(container.last_power_watts.values()))
        if watts is not None and watts > 0:
            self.detector.observe(container, watts, self.simulator.now)

    def adjust(self, core, container) -> None:
        self._feed(container)
        if self.conditioner is not None:
            self.conditioner.adjust(core, container)

    def on_context_switch(self, core, container) -> None:
        self._feed(container)
        if self.conditioner is not None:
            self.conditioner.on_context_switch(core, container)
