"""Offline power-model calibration from microbenchmarks (Section 4.1).

The paper calibrates each machine once with a set of microbenchmarks that
stress different subsystems -- raw CPU spin, high instruction rate, high
floating point, high last-level cache access, high memory access, disk I/O,
network I/O, and a mixed pattern -- each run at 100/75/50/25% of peak load.
Least-square regression over the collected (metrics, measured active power)
samples yields the model coefficients.

Calibration observes only what a real kernel could observe: hardware
counters, OS scheduling state (which chips had runnable tasks, which devices
were busy), and an external power measurement (the ground-truth energy
integral over the steady-state window, i.e. an ideal meter).  The hidden
power of unusual production workloads is by construction *not* represented
here -- that is the model error the online recalibration later removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.core.model import FEATURES_FULL, PowerModel
from repro.hardware.events import RateProfile
from repro.hardware.machine import Machine
from repro.hardware.specs import MachineSpec, build_machine
from repro.kernel import Compute, DiskIO, Kernel, NetIO, Sleep
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Microbenchmark:
    """One calibration workload: a profile plus optional I/O behaviour."""

    name: str
    profile: RateProfile
    #: Bytes of disk I/O issued per 1 ms compute burst (0 = none).
    disk_bytes_per_burst: float = 0.0
    #: Bytes of network I/O issued per 1 ms compute burst (0 = none).
    net_bytes_per_burst: float = 0.0

    def make_program(
        self,
        machine: Machine,
        busy_fraction: float,
        duration: float,
        start_offset: float = 0.0,
    ) -> Generator:
        """A program producing ``busy_fraction`` utilization for ``duration``.

        ``start_offset`` staggers concurrent workers so their I/O phases
        interleave instead of running in lockstep (keeping shared devices
        busy, as concurrent real workers would).
        """

        burst_seconds = 1e-3
        burst_cycles = machine.freq_hz * burst_seconds * busy_fraction
        idle_seconds = burst_seconds * (1.0 - busy_fraction)

        def program() -> Generator:
            if start_offset > 0:
                yield Sleep(start_offset)
            elapsed = 0.0
            while elapsed < duration:
                if burst_cycles > 0:
                    yield Compute(cycles=burst_cycles, profile=self.profile)
                if self.disk_bytes_per_burst > 0:
                    yield DiskIO(nbytes=self.disk_bytes_per_burst)
                if self.net_bytes_per_burst > 0:
                    yield NetIO(nbytes=self.net_bytes_per_burst)
                if idle_seconds > 0:
                    yield Sleep(idle_seconds)
                elapsed += burst_seconds

        return program()


def calibration_microbenchmarks() -> list[Microbenchmark]:
    """The Section 4.1 microbenchmark suite."""
    return [
        Microbenchmark("cpu-spin", RateProfile("cpu-spin", ipc=1.0)),
        Microbenchmark("high-instr", RateProfile("high-instr", ipc=2.5)),
        Microbenchmark(
            "high-float",
            RateProfile("high-float", ipc=1.8, flops_per_cycle=1.0),
        ),
        Microbenchmark(
            "high-cache",
            RateProfile("high-cache", ipc=0.8, cache_per_cycle=0.02),
        ),
        Microbenchmark(
            "high-mem",
            RateProfile(
                "high-mem", ipc=0.5, cache_per_cycle=0.012, mem_per_cycle=0.01
            ),
        ),
        Microbenchmark(
            "disk-io",
            RateProfile("disk-io", ipc=0.4),
            disk_bytes_per_burst=65536,
        ),
        Microbenchmark(
            "net-io",
            RateProfile("net-io", ipc=0.4),
            # Large transfers keep the NIC near-saturated at full load so
            # the calibration observes the metric's full range.
            net_bytes_per_burst=131072,
        ),
        Microbenchmark(
            "mixed",
            RateProfile(
                "mixed",
                ipc=1.4,
                flops_per_cycle=0.3,
                cache_per_cycle=0.008,
                mem_per_cycle=0.003,
            ),
            disk_bytes_per_burst=16384,
        ),
    ]


@dataclass
class CalibrationResult:
    """Calibration samples and fitted-model factory for one machine."""

    spec: MachineSpec
    #: Sample matrix over :data:`~repro.core.model.FEATURES_FULL`.
    samples: np.ndarray
    active_watts: np.ndarray
    idle_watts: float
    #: Maximum observed value of each metric (for the C*Mmax table).
    metric_max: dict[str, float]
    #: Package power measured on an idle machine (baseline for converting
    #: on-chip meter readings to active power); 0 when no package meter.
    package_idle_watts: float = 0.0

    def fit(self, features: tuple[str, ...], label: str = "") -> PowerModel:
        """Fit a model over a feature subset of the calibration samples."""
        indexes = [FEATURES_FULL.index(name) for name in features]
        return PowerModel.fit(
            self.samples[:, indexes],
            self.active_watts,
            features,
            idle_watts=self.idle_watts,
            label=label or f"{self.spec.name}:{'+'.join(features)}",
        )

    def cmax_table(self, features: tuple[str, ...] = FEATURES_FULL) -> dict[str, float]:
        """Paper-style ``C * Mmax`` table: max active-power impact per metric."""
        model = self.fit(features)
        return {
            name: model.coefficient(name) * self.metric_max.get(name, 0.0)
            for name in features
        }


class _OsStateSampler:
    """Periodic OS-visible sampling of chip/device busy fractions."""

    def __init__(self, machine: Machine, simulator: Simulator, period: float = 1e-4):
        self.machine = machine
        self.simulator = simulator
        self.period = period
        self.chip_active_ticks = [0] * len(machine.chips)
        self.disk_busy_ticks = 0
        self.net_busy_ticks = 0
        self.total_ticks = 0

    def start(self) -> None:
        self.simulator.schedule_recurring(self.period, self._tick)

    def _tick(self) -> None:
        self.total_ticks += 1
        for chip in self.machine.chips:
            if chip.active:
                self.chip_active_ticks[chip.index] += 1
        if self.machine.disk.busy:
            self.disk_busy_ticks += 1
        if self.machine.net.busy:
            self.net_busy_ticks += 1

    @property
    def chipshare_metric(self) -> float:
        """Machine-level Mchipshare: summed per-chip active fractions."""
        if self.total_ticks == 0:
            return 0.0
        return sum(t / self.total_ticks for t in self.chip_active_ticks)

    @property
    def disk_metric(self) -> float:
        return self.disk_busy_ticks / self.total_ticks if self.total_ticks else 0.0

    @property
    def net_metric(self) -> float:
        return self.net_busy_ticks / self.total_ticks if self.total_ticks else 0.0


def _run_calibration_point(
    spec: MachineSpec,
    bench: Microbenchmark,
    load: float,
    duration: float,
) -> tuple[np.ndarray, float]:
    """Run one (microbenchmark, load) point; return (metrics row, watts)."""
    sim = Simulator()
    machine = build_machine(spec, sim)
    kernel = Kernel(machine, sim)
    n_cores = machine.n_cores

    # Spread the load over cores: `full` fully-busy workers plus at most one
    # partially-busy worker, each pinned so utilization is deterministic.
    total_busy = load * n_cores
    full = int(total_busy + 1e-9)
    remainder = total_busy - full
    for core_index in range(full):
        kernel.spawn(
            bench.make_program(
                machine, 1.0, duration, start_offset=core_index * 0.37e-3
            ),
            f"{bench.name}-{core_index}",
            pinned_core=core_index,
        )
    if remainder > 1e-9:
        kernel.spawn(
            bench.make_program(machine, remainder, duration),
            f"{bench.name}-part",
            pinned_core=full,
        )

    sampler = _OsStateSampler(machine, sim)
    sampler.start()

    start_energy = machine.integrator.active_joules
    start_counters = [core.counters.read() for core in machine.cores]
    sim.run_until(duration)
    machine.checkpoint()

    elapsed_cycles = machine.freq_hz * duration
    totals = {
        "nonhalt": 0.0, "ins": 0.0, "flop": 0.0, "cache": 0.0, "mem": 0.0
    }
    for core, before in zip(machine.cores, start_counters):
        delta = core.counters.read().delta_from(before)
        totals["nonhalt"] += delta.nonhalt_cycles
        totals["ins"] += delta.instructions
        totals["flop"] += delta.flops
        totals["cache"] += delta.cache_refs
        totals["mem"] += delta.mem_trans

    row = np.array(
        [
            totals["nonhalt"] / elapsed_cycles,
            totals["ins"] / elapsed_cycles,
            totals["flop"] / elapsed_cycles,
            totals["cache"] / elapsed_cycles,
            totals["mem"] / elapsed_cycles,
            sampler.chipshare_metric,
            sampler.disk_metric,
            sampler.net_metric,
        ]
    )
    watts = (machine.integrator.active_joules - start_energy) / duration
    return row, watts


def calibrate_machine(
    spec: MachineSpec,
    loads: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25),
    duration: float = 0.25,
    benchmarks: list[Microbenchmark] | None = None,
) -> CalibrationResult:
    """Run the full calibration suite on one machine model."""
    benches = benchmarks if benchmarks is not None else calibration_microbenchmarks()
    rows = []
    watts = []
    for bench in benches:
        for load in loads:
            row, power = _run_calibration_point(spec, bench, load, duration)
            rows.append(row)
            watts.append(power)
    samples = np.vstack(rows)
    metric_max = {
        name: float(samples[:, i].max())
        for i, name in enumerate(FEATURES_FULL)
    }
    return CalibrationResult(
        spec=spec,
        samples=samples,
        active_watts=np.array(watts),
        idle_watts=spec.true_model.idle_machine_watts,
        metric_max=metric_max,
        package_idle_watts=_measure_package_idle(spec),
    )


def calibrate_machines(
    specs: list[MachineSpec] | tuple[MachineSpec, ...],
    loads: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25),
    duration: float = 0.25,
    jobs: int | None = None,
) -> dict[str, CalibrationResult]:
    """Calibrate several machine models, one worker process per machine.

    Returns ``{spec.name: CalibrationResult}`` in the order given.  Each
    machine's calibration is an independent seeded simulation, so results
    are identical to calling :func:`calibrate_machine` in a loop.
    """
    # Imported lazily: repro.analysis imports repro.core at package import
    # time, so a module-level import here would be circular.
    from repro.analysis.parallel import parallel_starmap

    specs = list(specs)
    results = parallel_starmap(
        calibrate_machine,
        [(spec, loads, duration) for spec in specs],
        jobs=jobs,
    )
    return {spec.name: result for spec, result in zip(specs, results)}


def _measure_package_idle(spec: MachineSpec, duration: float = 0.05) -> float:
    """Read the on-chip meter on an idle machine (calibration baseline)."""
    if not spec.has_package_meter:
        return 0.0
    from repro.hardware.meters import PackageMeter

    sim = Simulator()
    machine = build_machine(spec, sim)
    meter = PackageMeter(machine, sim, period=1e-3, delay=0.0)
    meter.start()
    sim.run_until(duration)
    return meter.mean_watts()
