"""Container lifecycle: creation, lookup, refcounting, background bucket.

Activity that has no traceable connection to any request -- the paper finds
a substantial amount of it in Google App Engine (Fig. 9) -- is charged to a
special *background* container so that the energy-sum validation (Fig. 8)
still accounts for all measured power.

The paper releases a container's 784-byte structure when its task refcount
drops to zero; we keep released containers in a ``closed`` state (statistics
intact) because the experiments aggregate them afterwards.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional

from repro.core.container import PowerContainer

#: Identifier of the per-machine background container.
BACKGROUND_CONTAINER_ID = 0


class ContainerRegistry:
    """All power containers known to one machine's facility."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self.background = PowerContainer(
            BACKGROUND_CONTAINER_ID, label="background"
        )
        self._containers: dict[int, PowerContainer] = {
            BACKGROUND_CONTAINER_ID: self.background
        }

    def create(
        self,
        label: str = "",
        created_at: float = 0.0,
        meta: Optional[dict[str, Any]] = None,
    ) -> PowerContainer:
        """Create a fresh container for a new request."""
        container = PowerContainer(
            next(self._ids), label=label, created_at=created_at, meta=meta
        )
        self._containers[container.id] = container
        return container

    def get(self, container_id: Optional[int]) -> PowerContainer:
        """Resolve a binding to a container; ``None`` means background."""
        if container_id is None:
            return self.background
        container = self._containers.get(container_id)
        if container is None:
            # An unknown id can arrive on a cross-machine message before the
            # local side has seen the request: materialize it.
            container = PowerContainer(container_id, label=f"remote-{container_id}")
            self._containers[container_id] = container
        return container

    def adopt(self, container: PowerContainer) -> None:
        """Register a container created elsewhere (cross-machine flows)."""
        self._containers[container.id] = container

    def incref(self, container_id: Optional[int]) -> None:
        """A task became linked to the container."""
        self.get(container_id).refcount += 1

    def decref(self, container_id: Optional[int]) -> None:
        """A linked task exited; close the container at refcount zero."""
        container = self.get(container_id)
        container.refcount = max(container.refcount - 1, 0)
        if container.refcount == 0 and container.id != BACKGROUND_CONTAINER_ID:
            container.closed = True

    def all_containers(self, include_background: bool = True) -> list[PowerContainer]:
        """Every known container (optionally without the background one)."""
        return [
            c
            for c in self._containers.values()
            if include_background or c.id != BACKGROUND_CONTAINER_ID
        ]

    def request_containers(self) -> list[PowerContainer]:
        """All request (non-background) containers."""
        return self.all_containers(include_background=False)

    def with_label_prefix(self, prefix: str) -> list[PowerContainer]:
        """Request containers whose label starts with ``prefix``."""
        return [c for c in self.request_containers() if c.label.startswith(prefix)]

    def total_energy(self, approach: str, containers: Iterable[PowerContainer] | None = None) -> float:
        """Sum of estimated energy (CPU + I/O) over containers."""
        pool = self.all_containers() if containers is None else list(containers)
        return sum(c.total_energy(approach) for c in pool)

    def __len__(self) -> int:
        return len(self._containers)

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Id counter plus every container's state, keyed by id.

        Containers are never removed from the registry (closing keeps the
        statistics), so a restore can address each one by id in the
        replayed registry.
        """
        value = next(self._ids)
        self._ids = itertools.count(value)
        return {
            "v": 1,
            "id_next": value,
            "containers": {
                str(cid): container.snapshot_state()
                for cid, container in sorted(self._containers.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown ContainerRegistry snapshot version {state.get('v')!r}"
            )
        self._ids = itertools.count(state["id_next"])
        for cid_str, container_state in state["containers"].items():
            self.get(int(cid_str)).restore_state(container_state)
