"""The linear event-driven power model (paper Eq. 1 and Eq. 2).

Active power is modelled as a linear function of hardware-event metrics::

    P_active = C_core*M_core + C_ins*M_ins + C_float*M_float
             + C_cache*M_cache + C_mem*M_mem            (Eq. 1)
             + C_chipshare*M_chipshare                  (Eq. 2 adds this)

with optional disk/network terms for the full-system model (Section 3.3).
The same coefficient vector serves both granularities the paper uses:

* **machine-level**, when the metrics sum event rates over all cores (used
  for calibration fitting and for the model trace compared against meters);
* **per-task**, when the metrics come from the core the task runs on (used
  by the per-request accountants).

Models are immutable except through :meth:`PowerModel.update_coefficients`,
which online recalibration (Section 3.2) uses to swap in refitted values.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter

import numpy as np

#: All modelled metrics, in canonical coefficient order.
ALL_FEATURES = (
    "mcore",
    "mins",
    "mfloat",
    "mcache",
    "mmem",
    "mchipshare",
    "mdisk",
    "mnet",
)

#: Eq. 1 features: core-level events only (validation approach #1).
FEATURES_EQ1 = ("mcore", "mins", "mfloat", "mcache", "mmem")

#: Eq. 2 features: Eq. 1 plus the shared-chip-power share metric.
FEATURES_EQ2 = FEATURES_EQ1 + ("mchipshare",)

#: Full-system features including peripheral activity.
FEATURES_FULL = FEATURES_EQ2 + ("mdisk", "mnet")


@dataclass(slots=True)
class MetricSample:
    """One observation of the modelled metrics.

    ``mcore`` is non-halt cycles per elapsed cycle; ``mins``/``mfloat``/
    ``mcache``/``mmem`` are events per elapsed cycle; ``mchipshare`` is the
    Eq. 3 share of chip maintenance power; ``mdisk``/``mnet`` are device
    utilization fractions.
    """

    mcore: float = 0.0
    mins: float = 0.0
    mfloat: float = 0.0
    mcache: float = 0.0
    mmem: float = 0.0
    mchipshare: float = 0.0
    mdisk: float = 0.0
    mnet: float = 0.0

    def as_vector(self, features: tuple[str, ...]) -> np.ndarray:
        """Project the sample onto a feature subset, in order."""
        return np.array([getattr(self, name) for name in features], dtype=float)

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view of all metrics."""
        return {name: getattr(self, name) for name in ALL_FEATURES}


class PowerModel:
    """A calibrated linear active-power model over a feature subset."""

    def __init__(
        self,
        features: tuple[str, ...],
        coefficients: np.ndarray,
        idle_watts: float = 0.0,
        label: str = "model",
    ) -> None:
        unknown = set(features) - set(ALL_FEATURES)
        if unknown:
            raise ValueError(f"unknown features: {sorted(unknown)}")
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != (len(features),):
            raise ValueError(
                f"coefficient shape {coefficients.shape} does not match "
                f"{len(features)} features"
            )
        self.features = tuple(features)
        self._coef = coefficients.copy()
        # Hot-path machinery for :meth:`active_power`: an attrgetter pulls
        # the feature fields out of a sample in one C call, and a reusable
        # buffer avoids a fresh ndarray per sample.  The reduction itself
        # stays ``coef @ buf`` -- BLAS and a pure-Python loop round
        # differently, and attribution must stay bit-identical.
        self._getter = attrgetter(*self.features)
        self._buf = np.empty(len(self.features), dtype=float)
        # Batch-engine machinery for :meth:`active_power_row`: positions of
        # this model's features within ALL_FEATURES, plus a fast-path length
        # when the features are a canonical-order prefix (they are for every
        # paper feature set) -- a contiguous slice of the caller's row then
        # feeds the dot directly, with no gather copy at all.
        self._all_indexes = np.array(
            [ALL_FEATURES.index(f) for f in self.features], dtype=np.intp
        )
        prefix = len(features) if self.features == ALL_FEATURES[: len(features)] else 0
        self._prefix_len = prefix
        #: Constant idle power measured at calibration time (Cidle).  Not
        #: part of the active-power estimate; recorded for completeness and
        #: for converting measured full power to active power.
        self.idle_watts = idle_watts
        self.label = label

    @property
    def coefficients(self) -> np.ndarray:
        """Copy of the current coefficient vector (aligned with features)."""
        return self._coef.copy()

    @property
    def coef_view(self) -> np.ndarray:
        """The live coefficient vector itself, for hot paths.

        Callers must treat the array as read-only; mutating it would bypass
        :meth:`update_coefficients`.  Do not hold on to the reference across
        recalibrations -- updates swap in a fresh array.
        """
        return self._coef

    def coefficient(self, feature: str) -> float:
        """Coefficient of one feature (0.0 when the feature is not used)."""
        if feature not in self.features:
            return 0.0
        return float(self._coef[self.features.index(feature)])

    def active_power(self, sample: MetricSample) -> float:
        """Estimated active power for one metric observation, clamped >= 0."""
        buf = self._buf
        buf[:] = self._getter(sample)
        watts = float(self._coef @ buf)
        return max(watts, 0.0)

    def active_power_row(self, row: np.ndarray) -> float:  # hot-path
        """Active power from a feature row laid out over ``ALL_FEATURES``.

        Fast-path twin of :meth:`active_power` for the batch accounting
        engine's structure-of-arrays layout: the caller maintains one
        reusable 8-slot row (or a row view of an ``(n, 8)`` matrix) and this
        method projects it onto the model's feature subset without building
        a :class:`MetricSample`.  The reduction is the same ``coef @ buf``
        ddot as :meth:`active_power` over bit-identical operands (a
        contiguous slice or gathered copy holds the same values), so both
        entry points attribute bit-identical watts.
        """
        k = self._prefix_len
        if k:
            watts = float(self._coef @ row[:k])
        else:
            buf = self._buf
            np.take(row, self._all_indexes, out=buf)
            watts = float(self._coef @ buf)
        return max(watts, 0.0)

    def active_power_batch(self, samples: np.ndarray) -> np.ndarray:
        """Estimated active power for rows of feature vectors."""
        samples = np.asarray(samples, dtype=float)
        return np.clip(samples @ self._coef, 0.0, None)

    def update_coefficients(self, coefficients: np.ndarray) -> None:
        """Swap in recalibrated coefficients (same feature set)."""
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.shape != self._coef.shape:
            raise ValueError("coefficient vector shape mismatch")
        self._coef = coefficients.copy()

    def copy(self, label: str | None = None) -> "PowerModel":
        """Independent copy (recalibration never mutates the original)."""
        return PowerModel(
            self.features,
            self._coef,
            idle_watts=self.idle_watts,
            label=label if label is not None else self.label,
        )

    @staticmethod
    def fit(
        samples: np.ndarray,
        active_watts: np.ndarray,
        features: tuple[str, ...],
        idle_watts: float = 0.0,
        label: str = "fitted",
        sample_weights: np.ndarray | None = None,
    ) -> "PowerModel":
        """Least-square-fit a model from (feature-vector, power) pairs.

        ``samples`` is an ``(n, len(features))`` matrix.  Weighted fitting
        supports the recalibration policy of weighing offline and online
        samples equally (Section 3.2).  Coefficients are clamped at zero:
        a negative event-power contribution is physically meaningless and
        only arises from collinear calibration inputs.
        """
        samples = np.asarray(samples, dtype=float)
        active_watts = np.asarray(active_watts, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != len(features):
            raise ValueError("sample matrix shape does not match features")
        if samples.shape[0] != active_watts.shape[0]:
            raise ValueError("sample and power counts differ")
        if samples.shape[0] < len(features):
            raise ValueError(
                f"need at least {len(features)} samples, got {samples.shape[0]}"
            )
        if sample_weights is not None:
            weights = np.sqrt(np.asarray(sample_weights, dtype=float))
            samples = samples * weights[:, None]
            active_watts = active_watts * weights
        coef, *_ = np.linalg.lstsq(samples, active_watts, rcond=None)
        coef = np.clip(coef, 0.0, None)
        return PowerModel(features, coef, idle_watts=idle_watts, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = ", ".join(
            f"{name}={c:.3g}" for name, c in zip(self.features, self._coef)
        )
        return f"PowerModel({self.label!r}: {terms}, idle={self.idle_watts:.3g})"
