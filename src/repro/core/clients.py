"""Per-client energy accounting (the paper's billing motivation).

Section 1: "recognizing the energy usage of individual requests helps
inform the full costs of web use" -- per-request containers make
client-oriented accounting possible.  The :class:`ClientEnergyLedger`
aggregates completed containers by a client key taken from the container
metadata, producing per-client totals suitable for chargeback or for
spotting which tenant drives the power bill (the cloud-computing use case
the paper highlights for non-VM platforms like Google App Engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.container import PowerContainer


@dataclass
class ClientUsage:
    """Aggregated resource usage for one client."""

    client: str
    request_count: int = 0
    energy_joules: float = 0.0
    cpu_seconds: float = 0.0
    io_energy_joules: float = 0.0
    peak_request_energy: float = 0.0
    by_request_type: dict[str, float] = field(default_factory=dict)

    @property
    def mean_energy_per_request(self) -> float:
        """Mean energy per completed request (J)."""
        if self.request_count == 0:
            return 0.0
        return self.energy_joules / self.request_count


class ClientEnergyLedger:
    """Aggregates container energy by client identity."""

    def __init__(
        self, approach: str = "recal", client_key: str = "client"
    ) -> None:
        self.approach = approach
        self.client_key = client_key
        self._usage: dict[str, ClientUsage] = {}
        self.unattributed_joules = 0.0

    def record(self, container: PowerContainer) -> Optional[ClientUsage]:
        """Fold one completed request container into the ledger.

        Containers without a client key are accumulated as unattributed
        energy (returned usage is ``None``).
        """
        energy = container.total_energy(self.approach)
        client = container.meta.get(self.client_key)
        if client is None:
            self.unattributed_joules += energy
            return None
        usage = self._usage.setdefault(client, ClientUsage(client=client))
        usage.request_count += 1
        usage.energy_joules += energy
        usage.cpu_seconds += container.stats.cpu_seconds
        usage.io_energy_joules += container.stats.io_energy_joules
        usage.peak_request_energy = max(usage.peak_request_energy, energy)
        rtype = container.meta.get("rtype", "unknown")
        usage.by_request_type[rtype] = (
            usage.by_request_type.get(rtype, 0.0) + energy
        )
        return usage

    def record_all(self, containers: Iterable[PowerContainer]) -> None:
        """Fold many containers (e.g. a registry's request containers)."""
        for container in containers:
            self.record(container)

    def usage(self, client: str) -> ClientUsage:
        """Usage of one client (empty record if never seen)."""
        return self._usage.get(client, ClientUsage(client=client))

    def clients(self) -> list[str]:
        """All clients seen, sorted by descending energy."""
        return [
            usage.client
            for usage in sorted(
                self._usage.values(),
                key=lambda u: u.energy_joules,
                reverse=True,
            )
        ]

    @property
    def total_joules(self) -> float:
        """All attributed energy across clients."""
        return sum(u.energy_joules for u in self._usage.values())

    def bill(self, joules_per_unit: float) -> dict[str, float]:
        """Simple chargeback: energy divided by a billing unit."""
        if joules_per_unit <= 0:
            raise ValueError("billing unit must be positive")
        return {
            client: usage.energy_joules / joules_per_unit
            for client, usage in self._usage.items()
        }
