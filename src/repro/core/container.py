"""The power container: per-request power/energy state (Section 3.3).

A container accumulates one request's hardware events, estimated energy
(under each configured accounting approach), CPU time, I/O energy, and the
duty-cycle history its execution experienced.  The paper encapsulates this
state in a 784-byte kernel structure with a reference counter; the structure
is released when all linked tasks exit.

Containers are machine-local; when a request spans machines, statistics are
carried on tagged socket messages and merged by the receiving side
(Section 3.4), which :meth:`ContainerStats.merge_carried` implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.hardware.events import EventVector

#: Size of the paper's in-kernel container structure, in bytes.  Used by
#: the Section 3.5 overhead benchmark.
CONTAINER_STRUCT_BYTES = 784


@dataclass
class ContainerStats:
    """Cumulative per-request statistics."""

    events: EventVector = field(default_factory=EventVector)
    #: Estimated active energy, per accounting approach label.
    energy_joules: dict[str, float] = field(default_factory=dict)
    #: Estimated peripheral (disk/net) energy attributed to the request.
    io_energy_joules: float = 0.0
    cpu_seconds: float = 0.0
    #: Sum of (duty_ratio * dt) over scheduled time; divided by
    #: ``cpu_seconds`` this yields the time-averaged duty-cycle ratio the
    #: request experienced (paper Fig. 12's Y axis).
    duty_weighted_seconds: float = 0.0
    sample_count: int = 0
    first_activity: Optional[float] = None
    last_activity: Optional[float] = None
    #: Primary-approach energy and CPU time per server stage (process
    #: name), enabling the paper's Fig. 4 per-stage annotations.
    stage_energy_joules: dict[str, float] = field(default_factory=dict)
    stage_cpu_seconds: dict[str, float] = field(default_factory=dict)

    def record_interval(
        self,
        now: float,
        dt: float,
        events: EventVector,
        energy_by_approach: dict[str, float],
        duty_ratio: float,
        stage: Optional[str] = None,
        primary_approach: Optional[str] = None,
    ) -> None:
        """Fold one sampled execution interval into the statistics."""
        self.record_core_interval(
            now, dt,
            events.nonhalt_cycles, events.instructions, events.flops,
            events.cache_refs, events.mem_trans, events.disk_bytes,
            events.net_bytes,
            energy_by_approach, duty_ratio, stage, primary_approach,
        )

    def record_core_interval(  # hot-path
        self,
        now: float,
        dt: float,
        d_cycles: float,
        d_ins: float,
        d_flops: float,
        d_cache: float,
        d_mem: float,
        d_disk: float,
        d_net: float,
        energy_by_approach: dict[str, float],
        duty_ratio: float,
        stage: Optional[str] = None,
        primary_approach: Optional[str] = None,
    ) -> None:
        """Scalar-field twin of :meth:`record_interval`.

        The batch accounting engine keeps counter deltas as plain floats
        (structure-of-arrays layout); this entry point folds them in without
        materializing an :class:`EventVector` per sample.  Field-accumulation
        order matches :meth:`record_interval` exactly, so both paths produce
        bit-identical statistics.
        """
        ev = self.events
        ev.nonhalt_cycles += d_cycles
        ev.instructions += d_ins
        ev.flops += d_flops
        ev.cache_refs += d_cache
        ev.mem_trans += d_mem
        ev.disk_bytes += d_disk
        ev.net_bytes += d_net
        for approach, joules in energy_by_approach.items():
            self.energy_joules[approach] = (
                self.energy_joules.get(approach, 0.0) + joules
            )
        self.cpu_seconds += dt
        self.duty_weighted_seconds += duty_ratio * dt
        self.sample_count += 1
        if self.first_activity is None:
            self.first_activity = now - dt
        self.last_activity = now
        if stage is not None:
            joules = energy_by_approach.get(primary_approach)
            if joules is None:
                joules = next(iter(energy_by_approach.values()), 0.0)
            self.stage_energy_joules[stage] = (
                self.stage_energy_joules.get(stage, 0.0) + joules
            )
            self.stage_cpu_seconds[stage] = (
                self.stage_cpu_seconds.get(stage, 0.0) + dt
            )

    def stage_mean_power(self, stage: str) -> float:
        """Mean power of one stage while scheduled (Fig. 4's watt labels)."""
        cpu = self.stage_cpu_seconds.get(stage, 0.0)
        if cpu <= 0:
            return 0.0
        return self.stage_energy_joules.get(stage, 0.0) / cpu

    def merge_carried(self, carried: dict[str, float]) -> None:
        """Merge statistics piggy-backed on a cross-machine message."""
        self.cpu_seconds += carried.get("cpu_seconds", 0.0)
        self.io_energy_joules += carried.get("io_energy_joules", 0.0)
        for key, value in carried.items():
            if key.startswith("energy:"):
                approach = key.split(":", 1)[1]
                self.energy_joules[approach] = (
                    self.energy_joules.get(approach, 0.0) + value
                )

    def export_carried(self) -> dict[str, float]:
        """Statistics snapshot to piggy-back on a cross-machine message."""
        carried: dict[str, float] = {
            "cpu_seconds": self.cpu_seconds,
            "io_energy_joules": self.io_energy_joules,
        }
        for approach, joules in self.energy_joules.items():
            carried[f"energy:{approach}"] = joules
        return carried

    @property
    def mean_duty_ratio(self) -> float:
        """Time-averaged duty-cycle ratio over the request's CPU time."""
        if self.cpu_seconds <= 0.0:
            return 1.0
        return self.duty_weighted_seconds / self.cpu_seconds

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        ev = self.events
        return {
            "v": 1,
            "events": [
                ev.nonhalt_cycles, ev.instructions, ev.flops, ev.cache_refs,
                ev.mem_trans, ev.disk_bytes, ev.net_bytes,
            ],
            "energy_joules": dict(sorted(self.energy_joules.items())),
            "io_energy_joules": self.io_energy_joules,
            "cpu_seconds": self.cpu_seconds,
            "duty_weighted_seconds": self.duty_weighted_seconds,
            "sample_count": self.sample_count,
            "first_activity": self.first_activity,
            "last_activity": self.last_activity,
            "stage_energy_joules": dict(
                sorted(self.stage_energy_joules.items())
            ),
            "stage_cpu_seconds": dict(sorted(self.stage_cpu_seconds.items())),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown ContainerStats snapshot version {state.get('v')!r}"
            )
        self.events = EventVector(*state["events"])
        self.energy_joules = dict(state["energy_joules"])
        self.io_energy_joules = state["io_energy_joules"]
        self.cpu_seconds = state["cpu_seconds"]
        self.duty_weighted_seconds = state["duty_weighted_seconds"]
        self.sample_count = state["sample_count"]
        self.first_activity = state["first_activity"]
        self.last_activity = state["last_activity"]
        self.stage_energy_joules = dict(state["stage_energy_joules"])
        self.stage_cpu_seconds = dict(state["stage_cpu_seconds"])


class PowerContainer:
    """One request's power container."""

    def __init__(
        self,
        container_id: int,
        label: str = "",
        created_at: float = 0.0,
        meta: Optional[dict[str, Any]] = None,
    ) -> None:
        self.id = container_id
        self.label = label or f"request-{container_id}"
        self.created_at = created_at
        self.meta: dict[str, Any] = dict(meta) if meta else {}
        self.stats = ContainerStats()
        #: Most recent estimated power draw while scheduled, per approach.
        self.last_power_watts: dict[str, float] = {}
        #: EWMA of the estimated *full-speed* power (measured power divided
        #: by the duty ratio in effect) -- the conditioning policy's input.
        self.full_speed_power_ewma: float = 0.0
        #: Per-request active-power cap; ``None`` means uncapped.
        self.power_cap_watts: Optional[float] = None
        #: Tasks currently linked to the container (paper's refcount).
        self.refcount = 0
        self.closed = False
        #: Snapshot of the last cross-machine stats export, so repeated
        #: exports carry deltas and the receiver never double-counts.
        self._last_export: dict[str, float] = {}
        #: Optional (time, watts) samples of the request's estimated power
        #: while scheduled; populated when the facility is created with
        #: ``record_power_history=True``.
        self.power_history: list[tuple[float, float]] = []

    def energy(self, approach: str) -> float:
        """Estimated energy under one accounting approach (J)."""
        return self.stats.energy_joules.get(approach, 0.0)

    def total_energy(self, approach: str) -> float:
        """CPU energy plus attributed I/O energy (J)."""
        return self.energy(approach) + self.stats.io_energy_joules

    def mean_power(self, approach: str) -> float:
        """Mean power over the request's scheduled CPU time (W)."""
        if self.stats.cpu_seconds <= 0.0:
            return 0.0
        return self.energy(approach) / self.stats.cpu_seconds

    def observe_power(
        self,
        approach: str,
        watts: float,
        duty_ratio: float,
        ewma_alpha: float = 0.3,
        update_ewma: bool = True,
    ) -> None:
        """Record the latest power estimate (and its full-speed projection).

        Only the facility's primary approach should update the full-speed
        EWMA (``update_ewma=True``); parallel comparison approaches record
        their last power without disturbing the conditioning input.
        """
        self.last_power_watts[approach] = watts
        if update_ewma and duty_ratio > 0.0:
            full = watts / duty_ratio
            if self.full_speed_power_ewma == 0.0:
                self.full_speed_power_ewma = full
            else:
                self.full_speed_power_ewma = (
                    (1.0 - ewma_alpha) * self.full_speed_power_ewma
                    + ewma_alpha * full
                )

    def export_carried_delta(self) -> dict[str, float]:
        """Stats delta since the previous export (for message piggy-backing).

        Successive messages of one request each carry only the execution
        cost accrued since the last export, so the dispatcher-side merge
        (Section 3.4) sums to the true total.
        """
        current = self.stats.export_carried()
        delta = {
            key: value - self._last_export.get(key, 0.0)
            for key, value in current.items()
        }
        self._last_export = current
        return delta

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "id": self.id,
            "label": self.label,
            "created_at": self.created_at,
            "stats": self.stats.snapshot_state(),
            "last_power_watts": dict(sorted(self.last_power_watts.items())),
            "full_speed_power_ewma": self.full_speed_power_ewma,
            "power_cap_watts": self.power_cap_watts,
            "refcount": self.refcount,
            "closed": self.closed,
            "last_export": dict(sorted(self._last_export.items())),
            "power_history": [list(entry) for entry in self.power_history],
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown PowerContainer snapshot version {state.get('v')!r}"
            )
        if state["id"] != self.id:
            raise ValueError(
                f"container id mismatch: snapshot {state['id']} != {self.id}"
            )
        self.label = state["label"]
        self.created_at = state["created_at"]
        self.stats.restore_state(state["stats"])
        self.last_power_watts = dict(state["last_power_watts"])
        self.full_speed_power_ewma = state["full_speed_power_ewma"]
        self.power_cap_watts = state["power_cap_watts"]
        self.refcount = state["refcount"]
        self.closed = state["closed"]
        self._last_export = dict(state["last_export"])
        self.power_history = [
            (entry[0], entry[1]) for entry in state["power_history"]
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerContainer(#{self.id} {self.label!r} "
            f"cpu={self.stats.cpu_seconds:.4f}s refs={self.refcount})"
        )
