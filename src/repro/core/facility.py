"""The power-container facility: everything wired onto a kernel.

:class:`PowerContainerFacility` implements the kernel's hook interface and
assembles the full Section 3 machinery for one machine:

* a :class:`~repro.core.registry.ContainerRegistry` holding per-request
  containers plus the background container;
* one :class:`~repro.core.accounting.CoreAccountant` per core, evaluating
  the configured accounting approaches in parallel (so validation can
  compare approaches #1/#2/#3 from one run);
* a machine-level *model tracer* producing the modelled power series that
  measurement alignment and Fig. 2/3 need;
* a recalibration manager that aligns delayed meter samples against the
  model trace via cross-correlation (Eq. 4) and refits the recalibrated
  approach's coefficients online; and
* optional request power conditioning (attached separately).

Request drivers use :meth:`create_request_container` to mint a container,
tag the injected request message with its id, and
:meth:`complete_request` when the response arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.core.accounting import CoreAccountant, ObserverEffect, _Approach
from repro.core.alignment import estimate_delay
from repro.core.batch import BatchAccountingEngine
from repro.core.calibration import CalibrationResult
from repro.core.chipshare import ChipShareEstimator
from repro.core.container import PowerContainer
from repro.core.model import (
    FEATURES_EQ1,
    FEATURES_FULL,
    PowerModel,
)
from repro.core.recalibration import OnlineRecalibrator, RecalibrationGuard
from repro.core.registry import ContainerRegistry
from repro.hardware.core import Core
from repro.hardware.counters import COUNTER_WRAP
from repro.hardware.meters import _PeriodicMeter
from repro.kernel import Kernel, KernelHooks, Message, Process
from repro.kernel.sockets import Endpoint


@dataclass(frozen=True)
class ApproachConfig:
    """Configuration of one accounting approach evaluated in parallel."""

    name: str
    features: tuple[str, ...]
    chipshare_mode: str
    recalibrated: bool = False
    idle_task_check: bool = True


def default_approaches() -> list[ApproachConfig]:
    """The paper's three validation approaches (Section 4.2).

    Approach #1 models core-level events only (Eq. 1).  Approaches #2/#3
    use the full-system feature set -- Eq. 2's chip share plus the
    Section 3.3 peripheral terms -- so device power is not absorbed into
    CPU coefficients during calibration.  Per-task metric samples carry
    zero disk/net activity (I/O energy is attributed separately), so the
    peripheral features do not perturb per-request CPU estimates.
    """
    return [
        ApproachConfig("eq1", FEATURES_EQ1, chipshare_mode="none"),
        ApproachConfig("eq2", FEATURES_FULL, chipshare_mode="mailbox"),
        ApproachConfig(
            "recal", FEATURES_FULL, chipshare_mode="mailbox", recalibrated=True
        ),
    ]


@dataclass
class ModelTracePoint:
    """One machine-level model sample (interval ending at ``time``)."""

    time: float
    row: np.ndarray  # over FEATURES_FULL
    watts: float  # primary-model machine active power estimate


@dataclass
class FacilityHealth:
    """Self-healing counters one facility exposes (Section 3.2 hardening).

    ``meter_state`` is ``"ok"`` while fresh meter samples keep arriving and
    ``"stale"`` after the staleness timeout expires: the facility then
    freezes the live models on their last-good coefficients and suspends
    recalibration until samples resume (``meter_fallbacks`` /
    ``meter_recoveries`` count the transitions).  ``rejected_meter_samples``
    counts delivered readings discarded for being non-finite;
    ``untagged_segments`` counts received segments whose in-band context tag
    was missing -- work that is routed to the background container instead
    of crashing or mis-charging a stale binding.
    """

    meter_state: str = "ok"
    meter_fallbacks: int = 0
    meter_recoveries: int = 0
    rejected_meter_samples: int = 0
    untagged_segments: int = 0

    def export_stats(self) -> dict[str, float]:
        """Counters as a flat dict (stable keys, float values)."""
        return {
            "meter_ok": 1.0 if self.meter_state == "ok" else 0.0,
            "meter_fallbacks": float(self.meter_fallbacks),
            "meter_recoveries": float(self.meter_recoveries),
            "rejected_meter_samples": float(self.rejected_meter_samples),
            "untagged_segments": float(self.untagged_segments),
        }


class PowerContainerFacility(KernelHooks):
    """Power containers for one machine (attaches itself to the kernel)."""

    def __init__(
        self,
        kernel: Kernel,
        calibration: CalibrationResult,
        approaches: Optional[list[ApproachConfig]] = None,
        primary: Optional[str] = None,
        observer: Optional[ObserverEffect] = ObserverEffect(),
        subtract_observer: bool = True,
        meter: Optional[_PeriodicMeter] = None,
        meter_idle_watts: float = 0.0,
        meter_covers_peripherals: bool = False,
        recalib_interval: float = 0.5,
        max_delay_seconds: float = 2.5,
        trace_period: Optional[float] = None,
        os_subsample: float = 1e-3,
        record_power_history: bool = False,
        track_user_level_stages: bool = True,
        recalibration_guard: bool = True,
        meter_staleness_timeout: Optional[float] = None,
        route_untagged_to_background: bool = False,
        telemetry=None,
        telemetry_node: str = "",
    ) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self.simulator = kernel.simulator
        self.calibration = calibration
        self.registry = ContainerRegistry()
        #: Optional :class:`~repro.telemetry.Telemetry` handle.  ``None``
        #: (the default) leaves every instrumented path byte-identical to
        #: the uninstrumented code; ``telemetry_node`` prefixes track and
        #: metric names so cluster machines sharing one handle stay apart.
        self.telemetry = telemetry
        self.telemetry_node = telemetry_node
        self._tprefix = f"{telemetry_node}/" if telemetry_node else ""
        self._t_facility_track = f"facility:{telemetry_node or 'machine'}"
        if telemetry is not None and telemetry.enabled:
            mprefix = (
                f"facility_{telemetry_node}_" if telemetry_node else "facility_"
            )
            self._m_untagged = telemetry.registry.counter(
                mprefix + "segments_untagged_total",
                help="received socket segments whose in-band tag was lost",
            )
            self._m_overflows = telemetry.registry.counter(
                mprefix + "overflow_interrupts_total",
                help="counter-overflow sampling interrupts taken",
            )
        else:
            self._m_untagged = None
            self._m_overflows = None
        configs = approaches if approaches is not None else default_approaches()
        self.approach_configs = {c.name: c for c in configs}
        self.primary = primary if primary is not None else configs[-1].name
        if self.primary not in self.approach_configs:
            raise ValueError(f"primary approach {self.primary!r} not configured")

        self.models: dict[str, PowerModel] = {}
        self.recalibrators: dict[str, OnlineRecalibrator] = {}
        approach_objs: list[_Approach] = []
        for config in configs:
            model = calibration.fit(config.features, label=config.name)
            self.models[config.name] = model
            estimator = ChipShareEstimator(
                mode=config.chipshare_mode,
                idle_task_check=config.idle_task_check,
            )
            approach_objs.append(
                _Approach(name=config.name, model=model, chipshare=estimator)
            )
            if config.recalibrated:
                indexes = [FEATURES_FULL.index(f) for f in config.features]
                self.recalibrators[config.name] = OnlineRecalibrator(
                    model,
                    calibration.samples[:, indexes],
                    calibration.active_watts,
                    guard=RecalibrationGuard() if recalibration_guard else None,
                )

        #: Full-feature model used to attribute peripheral I/O energy.
        self.io_model = calibration.fit(FEATURES_FULL, label="io")

        self.observer = observer
        self.accountants: dict[int, CoreAccountant] = {
            core.index: CoreAccountant(
                core=core,
                machine=self.machine,
                registry=self.registry,
                approaches=list(approach_objs),
                primary=self.primary,
                observer=observer,
                subtract_observer=subtract_observer,
                record_power_history=record_power_history,
                telemetry=telemetry,
                telemetry_prefix=self._tprefix,
            )
            for core in self.machine.cores
        }
        #: Structure-of-arrays engine for whole-machine accounting passes
        #: (end-of-run flush, synchronous sweep ticks).
        self.batch_engine = BatchAccountingEngine(self.accountants.values())

        # --- model trace + recalibration -------------------------------
        self.meter = meter
        self.meter_idle_watts = meter_idle_watts
        self.meter_covers_peripherals = meter_covers_peripherals
        self.recalib_interval = recalib_interval
        self.max_delay_seconds = max_delay_seconds
        self.trace_period = (
            trace_period
            if trace_period is not None
            else (meter.period if meter is not None else 10e-3)
        )
        self.os_subsample = min(os_subsample, self.trace_period)
        self.trace: list[ModelTracePoint] = []
        self.estimated_delay_samples: Optional[int] = None
        #: When true, estimated_delay_samples was set externally (ablation)
        #: and must not be re-estimated.
        self._delay_pinned = False
        #: Delivery-time watermark of meter samples already consumed.  A
        #: watermark (rather than a list index) stays correct when faults
        #: duplicate samples or deliver them out of order.
        self._meter_consumed_until = 0.0

        # --- self-healing guards (robustness hardening) -----------------
        self.health = FacilityHealth()
        self.route_untagged_to_background = route_untagged_to_background
        if meter_staleness_timeout is not None:
            self.meter_staleness_timeout = meter_staleness_timeout
        elif meter is not None:
            self.meter_staleness_timeout = max(
                4.0 * (meter.period + meter.delay), 2.0 * recalib_interval
            )
        else:
            self.meter_staleness_timeout = float("inf")
        self._tick_chip_active = [0] * len(self.machine.chips)
        self._tick_disk = 0
        self._tick_net = 0
        self._tick_subsamples = 0
        self._trace_last_counters = [
            kernel.effective_core_counters(core) for core in self.machine.cores
        ]
        #: Positions of the primary model's features within FEATURES_FULL,
        #: precomputed once -- the trace tick projects every row with it.
        #: The feature set of a model never changes (recalibration only
        #: swaps coefficients), so this cannot go stale.  When the primary
        #: uses the full feature set (the default), the gather is the
        #: identity and the trace tick dots the row directly.
        self._trace_feature_indexes = np.array(
            [FEATURES_FULL.index(f) for f in self.models[self.primary].features],
            dtype=np.intp,
        )
        self._trace_identity_features = (
            self.models[self.primary].features == FEATURES_FULL
        )
        self._tracing = False

        #: Optional conditioning policy (see attach_conditioner).
        self.conditioner = None

        #: User-level stage-transfer inference (the paper's future work,
        #: after Whodunit): learned binding of synchronization-object keys
        #: to containers.  Off => event-driven servers are mis-attributed,
        #: exactly the limitation Section 3.3 describes.
        self.track_user_level_stages = track_user_level_stages
        self._sync_bindings: dict[Any, int] = {}

        kernel.hooks = self

    # ------------------------------------------------------------------
    # Request lifecycle API (used by workload drivers)
    # ------------------------------------------------------------------
    def create_request_container(
        self, label: str = "", meta: Optional[dict[str, Any]] = None
    ) -> PowerContainer:
        """Mint a container for a new request (holds one driver reference)."""
        container = self.registry.create(
            label=label, created_at=self.simulator.now, meta=meta
        )
        container.refcount += 1
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.begin(
                self.simulator.now,
                f"request:{self._tprefix}{container.id}",
                "request",
                {"container": container.id, "label": label},
            )
        return container

    def complete_request(self, container: PowerContainer) -> None:
        """Release the driver's reference when the response is delivered."""
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.end(
                self.simulator.now,
                f"request:{self._tprefix}{container.id}",
                "request",
                {"energy_j": container.total_energy(self.primary)},
            )
        self.registry.decref(container.id)

    def attach_conditioner(self, conditioner) -> None:
        """Install a power conditioning policy (Section 3.4)."""
        self.conditioner = conditioner

    # ------------------------------------------------------------------
    # Model trace & recalibration
    # ------------------------------------------------------------------
    def start_tracing(self) -> None:
        """Begin the periodic machine-level model trace (and recalibration)."""
        if self._tracing:
            return
        self._tracing = True
        self._trace_last_counters = [
            self.kernel.effective_core_counters(core)
            for core in self.machine.cores
        ]
        self.simulator.schedule_recurring(self.os_subsample, self._os_tick)
        self.simulator.schedule_recurring(self.trace_period, self._trace_tick)
        if self.meter is not None:
            self.meter.start()
            self.simulator.schedule_recurring(
                self.recalib_interval, self._recalib_tick
            )

    def _os_tick(self) -> None:
        if not self._tracing:
            self.simulator.current_event.cancel()
            return
        self._tick_subsamples += 1
        for chip in self.machine.chips:
            if chip.active:
                self._tick_chip_active[chip.index] += 1
        if self.machine.disk.busy:
            self._tick_disk += 1
        if self.machine.net.busy:
            self._tick_net += 1

    def _trace_tick(self) -> None:  # hot-path
        if not self._tracing:
            self.simulator.current_event.cancel()
            return
        now = self.simulator.now
        elapsed_cycles = self.machine.freq_hz * self.trace_period
        # Plain-float accumulators, added in the same core order as the
        # previous ndarray accumulation: elementwise IEEE adds in a fixed
        # order are bit-identical, without two array allocations per core.
        # The snapshots are plain 5-tuples (no EventVector per core) and
        # the wraparound correction is unrolled from ``wrapped_delta``.
        t_cycles = t_ins = t_flops = t_cache = t_mem = 0.0
        last = self._trace_last_counters
        effective = self.kernel.effective_core_counters
        i = 0
        for core in self.machine.cores:
            snap = effective(core)
            prev = last[i]
            last[i] = snap
            i += 1
            d = snap[0] - prev[0]
            if d < 0.0:
                d = d + COUNTER_WRAP if d < -0.5 else 0.0
            t_cycles += d
            d = snap[1] - prev[1]
            if d < 0.0:
                d = d + COUNTER_WRAP if d < -0.5 else 0.0
            t_ins += d
            d = snap[2] - prev[2]
            if d < 0.0:
                d = d + COUNTER_WRAP if d < -0.5 else 0.0
            t_flops += d
            d = snap[3] - prev[3]
            if d < 0.0:
                d = d + COUNTER_WRAP if d < -0.5 else 0.0
            t_cache += d
            d = snap[4] - prev[4]
            if d < 0.0:
                d = d + COUNTER_WRAP if d < -0.5 else 0.0
            t_mem += d
        subs = max(self._tick_subsamples, 1)
        chipshare = sum(t / subs for t in self._tick_chip_active)
        mdisk = self._tick_disk / subs
        mnet = self._tick_net / subs
        self._tick_chip_active = [0] * len(self.machine.chips)
        self._tick_disk = 0
        self._tick_net = 0
        self._tick_subsamples = 0

        row = np.array(
            [
                t_cycles / elapsed_cycles,
                t_ins / elapsed_cycles,
                t_flops / elapsed_cycles,
                t_cache / elapsed_cycles,
                t_mem / elapsed_cycles,
                chipshare,
                mdisk,
                mnet,
            ]
        )
        primary_model = self.models[self.primary]
        if self._trace_identity_features:
            # Full-feature primary: the fancy-index gather would copy the
            # row verbatim, so dot the row directly (``.dot`` runs the same
            # ddot kernel as ``@`` without __matmul__ dispatch).
            watts = float(row.dot(primary_model.coef_view))
        else:
            watts = float(
                row[self._trace_feature_indexes].dot(primary_model.coef_view)
            )
        if watts < 0.0:
            watts = 0.0
        self.trace.append(ModelTracePoint(time=now, row=row, watts=watts))

    def _recalib_tick(self) -> None:
        if not self._tracing:
            self.simulator.current_event.cancel()
            return
        self._check_meter_health()
        if self.health.meter_state == "ok":
            self._run_recalibration()

    def _check_meter_health(self) -> None:
        """Meter-health watchdog: detect staleness, fall back, re-arm.

        When no sample has been delivered for ``meter_staleness_timeout``
        seconds the meter is declared stale: live recalibrated models are
        rolled back to their last-good coefficients (the offline fit if no
        refit was ever accepted) and recalibration is suspended.  The state
        flips back automatically -- counting a recovery -- once fresh
        samples resume.
        """
        if self.meter is None:
            return
        now = self.simulator.now
        latest = self.meter.latest_available(now)
        last_delivery = latest.available_at if latest is not None else 0.0
        stale = (now - last_delivery) > self.meter_staleness_timeout
        if stale and self.health.meter_state == "ok":
            self.health.meter_state = "stale"
            self.health.meter_fallbacks += 1
            for name, recalibrator in self.recalibrators.items():
                self.models[name].update_coefficients(
                    recalibrator.last_good_coefficients()
                )
            t = self.telemetry
            if t is not None and t.enabled:
                t.tracer.instant(now, self._t_facility_track, "meter.stale")
        elif not stale and self.health.meter_state == "stale":
            self.health.meter_state = "ok"
            self.health.meter_recoveries += 1
            t = self.telemetry
            if t is not None and t.enabled:
                t.tracer.instant(now, self._t_facility_track, "meter.recovered")

    def _run_recalibration(self) -> None:
        """Align newly delivered meter samples and refit the live model."""
        if self.meter is None or not self.recalibrators:
            return
        available = self.meter.samples_available(self.simulator.now)
        max_delay_samples = int(round(self.max_delay_seconds / self.trace_period))
        if len(available) < max_delay_samples + 5 or len(self.trace) < 5:
            return
        measured = np.array([s.watts - self.meter_idle_watts for s in available])
        # Non-finite readings carry no alignment information; zero them so
        # one NaN cannot blank the whole cross-correlation (Eq. 4).
        measured[~np.isfinite(measured)] = 0.0
        modeled = np.array([p.watts for p in self.trace])
        if not self._delay_pinned:
            # Re-estimate with the full series each round (the correlation
            # over a handful of delays is cheap); the estimate stabilizes
            # quickly and the lag itself does not change on a machine.
            self.estimated_delay_samples = estimate_delay(
                measured, modeled, min(max_delay_samples, len(modeled) - 1)
            )
        delay = self.estimated_delay_samples

        new_samples = [
            s for s in available if s.available_at > self._meter_consumed_until
        ]
        if not new_samples:
            return
        self._meter_consumed_until = max(s.available_at for s in new_samples)

        rows = []
        watts = []
        for sample in new_samples:
            if not np.isfinite(sample.watts):
                self.health.rejected_meter_samples += 1
                continue
            # Software sees only the delivery time; shifting it back by the
            # alignment-estimated delay recovers the interval the reading
            # actually describes (Section 3.2).
            observed_index = int(round(sample.available_at / self.trace_period)) - 1
            model_index = observed_index - delay
            if model_index < 0 or model_index >= len(self.trace):
                continue
            row = self.trace[model_index].row
            active = sample.watts - self.meter_idle_watts
            if self.meter_covers_peripherals:
                # Remove the (offline-modelled) peripheral power so the CPU
                # model is fitted against CPU active power only.
                active -= self.io_model.coefficient("mdisk") * row[
                    FEATURES_FULL.index("mdisk")
                ]
                active -= self.io_model.coefficient("mnet") * row[
                    FEATURES_FULL.index("mnet")
                ]
            rows.append(row)
            watts.append(max(active, 0.0))
        if not rows:
            return
        row_matrix = np.vstack(rows)
        for name, recalibrator in self.recalibrators.items():
            features = self.models[name].features
            indexes = [FEATURES_FULL.index(f) for f in features]
            recalibrator.add_pairs(row_matrix[:, indexes], np.array(watts))
            recalibrator.recalibrate()
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.instant(
                self.simulator.now,
                self._t_facility_track,
                "recal.refit",
                {"rows": len(rows), "delay_samples": delay},
            )

    # ------------------------------------------------------------------
    # Kernel hook implementations
    # ------------------------------------------------------------------
    def on_dispatch(self, core: Core, process: Process) -> None:
        accountant = self.accountants[core.index]
        accountant.sample_and_rebind(
            self.simulator.now, process.container_id, occupied=True,
            stage=process.name,
        )
        if self.conditioner is not None:
            self.conditioner.on_context_switch(core, accountant.bound_container)
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.begin(
                self.simulator.now,
                f"core:{self._tprefix}{core.index}",
                f"stage:{process.name}",
                {"container": process.container_id},
            )

    def on_undispatch(self, core: Core, process: Process, reason: str) -> None:
        self.accountants[core.index].sample_and_rebind(
            self.simulator.now, None, occupied=False
        )
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.end(
                self.simulator.now,
                f"core:{self._tprefix}{core.index}",
                f"stage:{process.name}",
                {"reason": reason},
            )

    def on_overflow(self, core: Core, process: Process) -> None:
        accountant = self.accountants[core.index]
        accountant.sample(self.simulator.now)
        if self.conditioner is not None:
            self.conditioner.adjust(core, accountant.bound_container)
        t = self.telemetry
        if t is not None and t.enabled:
            self._m_overflows.inc()
            t.tracer.instant(
                self.simulator.now,
                f"core:{self._tprefix}{core.index}",
                "overflow",
                {"container": process.container_id},
            )

    def on_binding_change(
        self, process: Process, old_id: Optional[int], new_id: Optional[int]
    ) -> None:
        if process.core_index is not None:
            self.accountants[process.core_index].sample_and_rebind(
                self.simulator.now, new_id
            )
        if old_id is not None:
            self.registry.decref(old_id)
        if new_id is not None:
            self.registry.incref(new_id)

    def on_fork(self, parent: Process, child: Process) -> None:
        if child.container_id is not None:
            self.registry.incref(child.container_id)

    def on_exit(self, process: Process) -> None:
        if process.container_id is not None:
            self.registry.decref(process.container_id)

    def on_send(self, process: Process, message: Message, dest: Endpoint) -> None:
        if message.tag.container_id is not None:
            self.registry.incref(message.tag.container_id)
            t = self.telemetry
            if t is not None and t.enabled:
                t.tracer.instant(
                    self.simulator.now,
                    f"request:{self._tprefix}{message.tag.container_id}",
                    "socket.send",
                    {"carried_stats": message.tag.carried_stats is not None},
                )

    def on_recv(self, process: Process, message: Message, source: Endpoint) -> None:
        tag = message.tag
        if tag.container_id is None:
            # The in-band tag was lost (or the sender was untracked).  The
            # reader would otherwise keep charging whatever request it
            # served last; optionally rebind it to the background container
            # so the misattribution is visible there instead of polluting a
            # finished request's statistics.
            self.health.untagged_segments += 1
            t = self.telemetry
            if t is not None and t.enabled:
                self._m_untagged.inc()
                t.tracer.instant(
                    self.simulator.now,
                    self._t_facility_track,
                    "tag.loss",
                    {"routed_to_background": self.route_untagged_to_background},
                )
            if (
                self.route_untagged_to_background
                and process.container_id is not None
            ):
                self.kernel.rebind(process, None)
            return
        t = self.telemetry
        if t is not None and t.enabled:
            t.tracer.instant(
                self.simulator.now,
                f"request:{self._tprefix}{tag.container_id}",
                "socket.recv",
                {"carried_stats": tag.carried_stats is not None},
            )
        if tag.carried_stats:
            self.registry.get(tag.container_id).stats.merge_carried(
                tag.carried_stats
            )
        self.registry.decref(tag.container_id)

    def on_io(self, process: Process, device_name: str, nbytes: float) -> None:
        container = self.registry.get(process.container_id)
        device = self.machine.disk if device_name == "disk" else self.machine.net
        duration = device.transfer_time(nbytes)
        feature = "mdisk" if device_name == "disk" else "mnet"
        container.stats.io_energy_joules += (
            self.io_model.coefficient(feature) * duration
        )
        if device_name == "disk":
            container.stats.events.disk_bytes += nbytes
        else:
            container.stats.events.net_bytes += nbytes

    def on_sync(self, process: Process, key: Any) -> None:
        if not self.track_user_level_stages:
            return
        known = self._sync_bindings.get(key)
        if known is None:
            # First access under some binding: learn the association (the
            # lock guards that request's continuation state).
            if process.container_id is not None:
                self._sync_bindings[key] = process.container_id
            return
        if known != process.container_id:
            # The process resumed another request's continuation: rebind
            # (samples the closing interval first, via on_binding_change).
            self.kernel.rebind(process, known)

    def export_stats(self, process: Process) -> Optional[dict[str, float]]:
        if process.container_id is None:
            return None
        # Bring the container current: account the sender's in-progress
        # interval so the tagged message carries up-to-date statistics.
        if process.core_index is not None:
            self.accountants[process.core_index].sample(self.simulator.now)
        return self.registry.get(process.container_id).export_carried_delta()

    # ------------------------------------------------------------------
    # Introspection helpers for experiments
    # ------------------------------------------------------------------
    def health_stats(self) -> dict[str, float]:
        """Merged robustness counters: watchdog + recalibration guards.

        Keys are stable, so two identically-seeded runs export identical
        dicts (the chaos determinism gate relies on this).

        .. deprecated::
            Kept as a thin compatibility schema; prefer
            :meth:`publish_metrics` + ``MetricsRegistry.snapshot()``,
            which expose the same counters under the unified
            ``facility_*`` naming convention (see docs/observability.md).
        """
        stats = self.health.export_stats()
        for name, recalibrator in sorted(self.recalibrators.items()):
            stats[f"{name}_rejected_samples"] = float(
                recalibrator.rejected_sample_count
            )
            stats[f"{name}_rolled_back"] = float(recalibrator.rolled_back_count)
            stats[f"{name}_recalibrations"] = float(
                recalibrator.recalibration_count
            )
            if recalibrator.guard is not None:
                for key, value in recalibrator.guard.export_stats().items():
                    stats[f"{name}_{key}"] = value
        return stats

    def publish_metrics(self, registry=None) -> None:
        """Mirror :meth:`health_stats` into a telemetry metrics registry.

        Keys become ``facility_<key>`` gauges (``facility_<node>_<key>``
        when a ``telemetry_node`` name was configured).  With no explicit
        ``registry`` the attached telemetry handle's registry is used;
        without either, this is a no-op.
        """
        if registry is None:
            if self.telemetry is None:
                return
            registry = self.telemetry.registry
        prefix = (
            f"facility_{self.telemetry_node}_"
            if self.telemetry_node
            else "facility_"
        )
        for key, value in self.health_stats().items():
            registry.gauge(prefix + key).set(value)
        registry.gauge(prefix + "samples_taken").set(
            float(sum(a.samples_taken for a in self.accountants.values()))
        )

    def flush(self) -> None:
        """Force a sample on every core (end-of-experiment accounting).

        Runs the batch engine: one vectorized delta/correction/metrics
        pass over all cores, then the per-core charge in core-index order
        -- bit-identical to sampling each accountant sequentially.
        """
        self.batch_engine.sample_all(self.simulator.now)

    def model_trace_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(interval-end times, modelled machine active watts) arrays."""
        times = np.array([p.time for p in self.trace])
        watts = np.array([p.watts for p in self.trace])
        return times, watts

    def pin_delay(self, delay_samples: int) -> None:
        """Force a fixed measurement delay (alignment ablation)."""
        self.estimated_delay_samples = delay_samples
        self._delay_pinned = True

    @property
    def estimated_delay_seconds(self) -> Optional[float]:
        """Alignment-estimated meter delay, if computed."""
        if self.estimated_delay_samples is None:
            return None
        return self.estimated_delay_samples * self.trace_period

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Registry, accountants, models, trace, meter, and health state.

        The sync-binding table may hold arbitrary hashable keys, so it is
        rendered with ``str`` keys for verification only; on restore the
        replayed table (reconstructed identically by the replay) is kept.
        """
        return {
            "v": 1,
            "primary": self.primary,
            "registry": self.registry.snapshot_state(),
            "accountants": {
                str(index): accountant.snapshot_state()
                for index, accountant in sorted(self.accountants.items())
            },
            "model_coefficients": {
                name: model.coefficients.tolist()
                for name, model in sorted(self.models.items())
            },
            "recalibrators": {
                name: recalibrator.snapshot_state()
                for name, recalibrator in sorted(self.recalibrators.items())
            },
            "trace": [
                [point.time, point.row.tolist(), point.watts]
                for point in self.trace
            ],
            "estimated_delay_samples": self.estimated_delay_samples,
            "delay_pinned": self._delay_pinned,
            "meter_consumed_until": self._meter_consumed_until,
            "meter": (
                self.meter.snapshot_state() if self.meter is not None else None
            ),
            "health": {
                "meter_state": self.health.meter_state,
                "meter_fallbacks": self.health.meter_fallbacks,
                "meter_recoveries": self.health.meter_recoveries,
                "rejected_meter_samples": self.health.rejected_meter_samples,
                "untagged_segments": self.health.untagged_segments,
            },
            "tick_chip_active": list(self._tick_chip_active),
            "tick_disk": self._tick_disk,
            "tick_net": self._tick_net,
            "tick_subsamples": self._tick_subsamples,
            "trace_last_counters": [
                list(entry) for entry in self._trace_last_counters
            ],
            "tracing": self._tracing,
            "sync_bindings": {
                str(key): cid
                for key, cid in sorted(
                    self._sync_bindings.items(), key=lambda kv: str(kv[0])
                )
            },
            "conditioner": (
                self.conditioner.snapshot_state()
                if self.conditioner is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown facility snapshot version {state.get('v')!r}"
            )
        self.registry.restore_state(state["registry"])
        for index_str, accountant_state in state["accountants"].items():
            self.accountants[int(index_str)].restore_state(accountant_state)
        for name, coefficients in state["model_coefficients"].items():
            self.models[name].update_coefficients(
                np.asarray(coefficients, dtype=float)
            )
        for name, recalibrator_state in state["recalibrators"].items():
            self.recalibrators[name].restore_state(recalibrator_state)
        self.trace = [
            ModelTracePoint(
                time=entry[0],
                row=np.asarray(entry[1], dtype=float),
                watts=entry[2],
            )
            for entry in state["trace"]
        ]
        self.estimated_delay_samples = state["estimated_delay_samples"]
        self._delay_pinned = state["delay_pinned"]
        self._meter_consumed_until = state["meter_consumed_until"]
        if self.meter is not None and state["meter"] is not None:
            self.meter.restore_state(state["meter"])
        health = state["health"]
        self.health.meter_state = health["meter_state"]
        self.health.meter_fallbacks = health["meter_fallbacks"]
        self.health.meter_recoveries = health["meter_recoveries"]
        self.health.rejected_meter_samples = health["rejected_meter_samples"]
        self.health.untagged_segments = health["untagged_segments"]
        self._tick_chip_active = list(state["tick_chip_active"])
        self._tick_disk = state["tick_disk"]
        self._tick_net = state["tick_net"]
        self._tick_subsamples = state["tick_subsamples"]
        self._trace_last_counters = [
            tuple(entry) for entry in state["trace_last_counters"]
        ]
        self._tracing = state["tracing"]
        if self.conditioner is not None and state["conditioner"] is not None:
            self.conditioner.restore_state(state["conditioner"])
