"""Request-level value types shared by workloads, drivers, and dispatchers.

Kept free of workload/server dependencies so the server package and the
workload package can both use them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.container import PowerContainer


@dataclass(frozen=True)
class RequestSpec:
    """One sampled request: its type plus handler parameters.

    ``priority`` and ``deadline`` exist for overload protection
    (:mod:`repro.server.overload`): higher priorities survive load shedding
    longer, and ``deadline`` is the *absolute* simulated time after which
    serving the request is pointless (expired requests are shed rather than
    queued).  Both default to "no special treatment" so workloads that never
    think about overload keep working unchanged.
    """

    rtype: str
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    deadline: Optional[float] = None


@dataclass
class RequestResult:
    """A completed request observed by a driver or dispatcher."""

    request_id: int
    rtype: str
    arrival: float
    completion: float
    container: PowerContainer

    @property
    def response_time(self) -> float:
        """Wall-clock latency seen by the client."""
        return self.completion - self.arrival

    def mean_power(self, approach: str = "recal") -> float:
        """Mean power over the request's *lifetime* (paper Fig. 6).

        The paper defines a request's mean power as its average consumption
        over the course of the request execution, i.e. energy divided by
        first-to-last-activity duration (blocking waits included).
        """
        stats = self.container.stats
        if stats.first_activity is None or stats.last_activity is None:
            return 0.0
        span = stats.last_activity - stats.first_activity
        if span <= 0.0:
            span = stats.cpu_seconds
        if span <= 0.0:
            return 0.0
        return self.container.total_energy(approach) / span

    def energy(self, approach: str = "recal") -> float:
        """Estimated request energy (paper Fig. 7)."""
        return self.container.total_energy(approach)
