"""Deterministic checkpoint/restore for long simulations.

Three pieces:

* :mod:`~repro.checkpoint.state` -- the snapshot payload rules (plain data
  only), schema versioning, digests, and the field-level diff that powers
  restore verification;
* :mod:`~repro.checkpoint.manager` -- crash-consistent persistence: atomic
  write-rename, integrity digests, corrupt/schema-mismatch rejection;
* :mod:`~repro.checkpoint.runner` -- replay-verified checkpointed runs:
  periodic auto-checkpoints at sim-clock safe-points and bit-identical
  resume in a fresh process.

See ``docs/robustness.md`` ("Checkpoint & resume") for the safe-point
rules and what is and is not captured.
"""

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.runner import (
    CheckpointedRun,
    RunConfig,
    resume_checkpointed,
    run_checkpointed,
)
from repro.checkpoint.state import (
    SCHEMA_VERSION,
    CheckpointError,
    CorruptCheckpointError,
    RestoreMismatchError,
    SchemaMismatchError,
    canonical_bytes,
    diff_states,
    generator_state,
    payload_digest,
    set_generator_state,
    validate_plain,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "CorruptCheckpointError",
    "SchemaMismatchError",
    "RestoreMismatchError",
    "CheckpointManager",
    "CheckpointedRun",
    "RunConfig",
    "run_checkpointed",
    "resume_checkpointed",
    "canonical_bytes",
    "payload_digest",
    "validate_plain",
    "diff_states",
    "generator_state",
    "set_generator_state",
]
