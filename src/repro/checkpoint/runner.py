"""Replay-verified checkpointed runs: periodic snapshots, bit-exact resume.

The simulation world is full of live generator frames (request programs),
closures (scheduled callbacks), and cross-references (containers inside
in-flight messages) that cannot be pickled.  Instead of serializing them,
a :class:`CheckpointedRun` exploits the engine's determinism:

* **Safe-points** are auto-checkpoint events scheduled on the simulated
  clock at ``k * checkpoint_period`` for ``k = 1..N`` -- between events by
  construction, identically placed in every run of the same config.
* **Saving** (the original run): at tick ``k``, every stateful layer's
  ``snapshot_state()`` is collected into one plain-data tree and written
  atomically by :class:`~repro.checkpoint.manager.CheckpointManager`.
* **Resuming** (a fresh process): the world is rebuilt from the persisted
  :class:`RunConfig` and *replayed from t=0* with the identical tick
  schedule.  At the checkpointed tick the replayed layers are snapshotted
  again and verified **bit-for-bit** against the checkpoint
  (:class:`~repro.checkpoint.state.RestoreMismatchError` carries a
  field-level diff on divergence); the checkpoint's state is then imposed
  via ``restore_state()`` and the run continues, saving ticks ``k+1...``
  as the original would have.

The resumed run therefore finishes with exactly the event sequence, RNG
cursors, and accumulator bits of an uninterrupted run -- which
:meth:`CheckpointedRun.run` proves by returning the four fingerprints
(report, trace, shed, batch) the CI restore lane compares.

With ``checkpoint_period=None`` nothing is scheduled and nothing is
snapshotted: the disabled mode is the plain run, with zero added events.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.state import RestoreMismatchError, diff_states

__all__ = [
    "RunConfig",
    "CheckpointedRun",
    "run_checkpointed",
    "resume_checkpointed",
]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to rebuild a checkpointable world from scratch.

    ``kind`` selects the world: ``"solr"`` is the macro workload used by
    the determinism gate (same parameters as ``ci/determinism.py``);
    ``"chaos"`` runs the named fault scenario through the chaos harness.
    """

    kind: str = "solr"
    seed: int = 7
    duration: float = 1.5
    warmup: float = 0.2
    load_fraction: float = 0.6
    cal_duration: float = 0.1
    scenario: str = "meter-nan-burst"
    duration_scale: float = 1.0
    checkpoint_period: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("solr", "chaos"):
            raise ValueError(f"unknown run kind {self.kind!r}")
        if self.checkpoint_period is not None and self.checkpoint_period <= 0:
            raise ValueError("checkpoint period must be positive")

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "load_fraction": self.load_fraction,
            "cal_duration": self.cal_duration,
            "scenario": self.scenario,
            "duration_scale": self.duration_scale,
            "checkpoint_period": self.checkpoint_period,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RunConfig":
        missing = {f for f in cls.__dataclass_fields__} - set(payload)
        if missing:
            raise ValueError(
                f"checkpoint config missing fields {sorted(missing)}"
            )
        return cls(**{f: payload[f] for f in cls.__dataclass_fields__})


class _PlanLayer:
    """Adapts :meth:`FaultPlan.getstate`/``setstate`` to the layer protocol."""

    def __init__(self, plan) -> None:
        self.plan = plan

    def snapshot_state(self) -> dict:
        return self.plan.getstate()

    def restore_state(self, state: dict) -> None:
        self.plan.setstate(state)


class _MemberLayer:
    """Scalar liveness state of one :class:`ClusterMachine`."""

    def __init__(self, member) -> None:
        self.member = member

    def snapshot_state(self) -> dict:
        return {
            "v": 1,
            "alive": self.member.alive,
            "crash_count": self.member.crash_count,
            "energy_mark": self.member.energy_mark,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("v") != 1:
            raise ValueError(
                f"unknown ClusterMachine snapshot version {state.get('v')!r}"
            )
        self.member.alive = state["alive"]
        self.member.crash_count = state["crash_count"]
        self.member.energy_mark = state["energy_mark"]


class CheckpointedRun:
    """One world, built from a :class:`RunConfig`, run under checkpointing.

    ``on_checkpoint(index)`` fires after each checkpoint file is durably on
    disk -- the crash harness uses it to SIGKILL the process at a chosen
    epoch, guaranteeing the kill happens *after* a complete checkpoint.
    """

    def __init__(
        self,
        config: RunConfig,
        directory: Optional[str] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
        keep: int = 4,
        _resume_body: Optional[dict] = None,
    ) -> None:
        from repro.telemetry.tracer import Telemetry

        self.config = config
        self.manager = (
            CheckpointManager(directory, keep=keep)
            if directory is not None
            else None
        )
        self.on_checkpoint = on_checkpoint
        self._resume_index = (
            _resume_body["index"] if _resume_body is not None else None
        )
        self._resume_layers = (
            _resume_body["layers"] if _resume_body is not None else None
        )
        self.resumed = False
        self.telemetry = Telemetry()
        self.layers: dict[str, object] = {}
        if config.kind == "solr":
            self._build_solr()
        else:
            self._build_chaos()
        self._schedule_checkpoints()

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------
    def _build_solr(self) -> None:
        from repro.core import calibrate_machine
        from repro.hardware import SANDYBRIDGE
        from repro.workloads import SolrWorkload, prepare_workload

        config = self.config
        self.calibration = calibrate_machine(
            SANDYBRIDGE, duration=config.cal_duration
        )
        live = prepare_workload(
            SolrWorkload(),
            SANDYBRIDGE,
            self.calibration,
            config.load_fraction,
            duration=config.duration,
            warmup=config.warmup,
            seed=config.seed,
            facility_kwargs={"telemetry": self.telemetry},
        )
        self._live = live
        self.simulator = live.simulator
        self._end = config.duration
        self.layers = {
            "sim": live.simulator,
            "hub": live.hub,
            "machine": live.machine,
            "kernel": live.kernel,
            "facility": live.facility,
            "driver": live.driver,
            "run": live,
            "telemetry": self.telemetry,
        }

    def _build_chaos(self) -> None:
        from repro.faults import (
            OverloadWorld,
            SingleMachineWorld,
            prepare_scenario,
            scenario_by_name,
        )

        config = self.config
        scenario = scenario_by_name(config.scenario)
        live = prepare_scenario(
            scenario,
            config.seed,
            duration_scale=config.duration_scale,
            telemetry=self.telemetry,
        )
        self._live = live
        world = live.world
        self.simulator = world.simulator
        self._end = live.duration
        layers: dict[str, object] = {
            "sim": world.simulator,
            "hub": world.hub,
        }
        if isinstance(world, SingleMachineWorld):
            layers.update(
                machine=world.machine,
                kernel=world.kernel,
                facility=world.facility,
                driver=world.driver,
            )
        else:
            for member in world.cluster.machines:
                layers[f"machine:{member.name}"] = member.machine
                layers[f"kernel:{member.name}"] = member.kernel
                layers[f"facility:{member.name}"] = member.facility
                layers[f"member:{member.name}"] = _MemberLayer(member)
            layers["dispatcher"] = world.dispatcher
            if isinstance(world, OverloadWorld):
                layers["protector"] = world.protector
                layers["enforcer"] = world.enforcer
        layers["targets"] = world.targets
        layers["plan"] = _PlanLayer(live.plan)
        layers["telemetry"] = self.telemetry
        self.layers = layers

    # ------------------------------------------------------------------
    # Auto-checkpoint safe-points
    # ------------------------------------------------------------------
    def _schedule_checkpoints(self) -> None:
        period = self.config.checkpoint_period
        if period is None:
            return
        index = 1
        while index * period < self._end - 1e-12:
            self.simulator.schedule_at(
                index * period,
                self._tick,
                index,
                label=f"auto-checkpoint-{index}",
            )
            index += 1

    def _collect(self) -> dict:
        return {name: layer.snapshot_state() for name, layer in self.layers.items()}

    def _tick(self, index: int) -> None:
        if self._resume_index is not None and not self.resumed:
            if index < self._resume_index:
                # Replaying toward the checkpointed safe-point: the original
                # run already wrote these files; rewriting identical bytes
                # would only churn the directory.
                return
            snapshot = self._collect()
            expected = self._resume_layers
            diffs: list[str] = []
            for name in sorted(set(expected) | set(snapshot)):
                if name not in snapshot:
                    diffs.append(f"layer {name!r} missing from replayed world")
                elif name not in expected:
                    diffs.append(f"layer {name!r} absent from checkpoint")
                else:
                    diffs.extend(
                        diff_states(expected[name], snapshot[name], path=name)
                    )
            if diffs:
                raise RestoreMismatchError(
                    "replayed world diverged from checkpoint "
                    f"{index} at t={self.simulator.now!r}:\n  "
                    + "\n  ".join(diffs[:8])
                )
            for name, layer in self.layers.items():
                layer.restore_state(expected[name])
            self.resumed = True
            return
        snapshot = self._collect()
        if self.manager is not None:
            self.manager.save(
                index, self.simulator.now, self.config.to_payload(), snapshot
            )
            if self.on_checkpoint is not None:
                self.on_checkpoint(index)

    # ------------------------------------------------------------------
    # Driving and fingerprinting
    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Run to the end; return the four comparison fingerprints."""
        if self.config.kind == "solr":
            result = self._live.finish()
            fingerprints = self._solr_fingerprints(result)
        else:
            from repro.faults import finalize_scenario

            self.simulator.run_until(self._end)
            report = finalize_scenario(self._live)
            fingerprints = self._chaos_fingerprints(report)
        if self._resume_index is not None and not self.resumed:
            raise RestoreMismatchError(
                f"run finished without reaching checkpoint tick "
                f"{self._resume_index}; checkpoint and config disagree"
            )
        fingerprints["resumed"] = self.resumed
        fingerprints["sim_time"] = self.simulator.now
        return fingerprints

    def _solr_fingerprints(self, result) -> dict:
        primary = result.facility.primary
        report = {
            "coefficients": tuple(
                (name, float(watts))
                for name, watts in sorted(
                    self.calibration.cmax_table().items()
                )
            ),
            "idle_watts": self.calibration.idle_watts,
            "n_requests": len(result.driver.results),
            "energies": tuple(
                r.energy(primary) for r in result.driver.results
            ),
            "response_times": tuple(
                r.response_time for r in result.driver.results
            ),
            "measured_joules": result.measured_active_joules,
        }
        rendered = "\n".join(f"{k}={report[k]!r}" for k in sorted(report))
        return {
            "kind": "solr",
            "report": _digest(rendered),
            "trace": self.telemetry.trace_fingerprint(),
            "shed": "-",
            "batch": _digest(
                "\n".join(self._batch_lines(result.facility))
            ),
            "n_requests": report["n_requests"],
        }

    def _chaos_fingerprints(self, report) -> dict:
        from repro.faults import OverloadWorld, SingleMachineWorld

        world = self._live.world
        if isinstance(world, SingleMachineWorld):
            batch_lines = self._batch_lines(world.facility)
        else:
            batch_lines = []
            for member in world.cluster.machines:
                batch_lines.extend(
                    f"{member.name}|{line}"
                    for line in self._batch_lines(member.facility)
                )
        shed = (
            world.protector.shed_fingerprint()
            if isinstance(world, OverloadWorld)
            else "-"
        )
        return {
            "kind": "chaos",
            "scenario": report.scenario,
            "report": _digest(report.fingerprint()),
            "trace": self.telemetry.trace_fingerprint(),
            "shed": shed,
            "batch": _digest("\n".join(batch_lines)),
            "passed": report.passed,
        }

    @staticmethod
    def _batch_lines(facility) -> list[str]:
        """Post-flush per-container accounting state, canonically rendered."""
        primary = facility.primary
        containers = sorted(
            facility.registry.all_containers(), key=lambda c: c.id
        )
        return [
            f"{c.id}:{c.label}:{c.total_energy(primary)!r}:"
            f"{c.stats.sample_count}"
            for c in containers
        ]


def run_checkpointed(
    config: RunConfig,
    directory: Optional[str] = None,
    on_checkpoint: Optional[Callable[[int], None]] = None,
) -> dict:
    """One-shot checkpointed run; returns the fingerprint dict."""
    return CheckpointedRun(
        config, directory=directory, on_checkpoint=on_checkpoint
    ).run()


def resume_checkpointed(
    directory: str,
    on_checkpoint: Optional[Callable[[int], None]] = None,
) -> dict:
    """Resume from the newest checkpoint in ``directory`` and run to the end.

    Loads (and fully validates) the latest checkpoint, rebuilds the world
    from its persisted config, replays to the checkpointed safe-point,
    verifies bit-for-bit, restores, and finishes the run.
    """
    manager = CheckpointManager(directory)
    body = manager.load_latest()
    config = RunConfig.from_payload(body["config"])
    run = CheckpointedRun(
        config,
        directory=directory,
        on_checkpoint=on_checkpoint,
        _resume_body=body,
    )
    return run.run()
