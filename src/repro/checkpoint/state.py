"""Canonical snapshot payloads: plain data, digests, mismatch diffs.

Every stateful layer of the simulation exposes ``snapshot_state()`` /
``restore_state(state)``.  Snapshots are restricted to *plain data* --
dicts with string keys, lists, tuples, strings, bytes, ints, floats,
booleans, and ``None`` -- so that

* the serialized byte stream is a pure function of the state (no object
  identities, no set iteration order, no pickle memo aliasing surprises),
* a payload written by one process compares bit-for-bit against a payload
  produced by another process replaying the same seeded run, and
* corrupt or truncated checkpoint files fail loudly at the digest check
  instead of deserializing into a subtly wrong world.

Numpy arrays and deques must be converted by the layer (``tolist()`` /
``list()``); ``float64 -> float`` round-trips exactly, so converted
payloads lose no precision.  Sets are rejected outright.

Versioning happens at two levels: the file schema
(:data:`SCHEMA_VERSION`, guarded by :class:`~repro.checkpoint.manager
.CheckpointManager`) and a per-layer ``"v"`` key inside each layer's
snapshot dict, checked by that layer's ``restore_state``.
"""

from __future__ import annotations

import hashlib
import pickle

import numpy as np

#: Bump on any incompatible change to the checkpoint file layout or to any
#: layer's snapshot schema.  Old files are rejected, never reinterpreted.
SCHEMA_VERSION = 1

_PLAIN_SCALARS = (str, bytes, int, float, bool, type(None))


class CheckpointError(RuntimeError):
    """Base class for all checkpoint/restore failures."""


class CorruptCheckpointError(CheckpointError):
    """The checkpoint file is truncated, altered, or not a checkpoint."""


class SchemaMismatchError(CheckpointError):
    """The checkpoint was written under an incompatible schema version."""


class RestoreMismatchError(CheckpointError):
    """Replayed world state disagrees with the checkpoint bit-for-bit."""


def validate_plain(payload, path: str = "payload") -> None:
    """Reject anything that is not deterministic plain data.

    Raises ``TypeError`` naming the offending path, so a layer that leaks
    an object reference into its snapshot fails at save time with a
    pointer straight to the field.
    """
    if isinstance(payload, bool) or payload is None:
        return
    # Exact types only: numpy scalars subclass float/str/bytes but pickle
    # to different byte streams, which would silently break the digest
    # comparison between a saved payload and its replayed counterpart.
    if type(payload) in _PLAIN_SCALARS:
        return
    if isinstance(payload, dict):
        for key, value in payload.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"{path}: dict key {key!r} is not a string"
                )
            validate_plain(value, f"{path}[{key!r}]")
        return
    if isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            validate_plain(value, f"{path}[{index}]")
        return
    raise TypeError(
        f"{path}: {type(payload).__name__} is not plain snapshot data "
        f"(allowed: dict/list/tuple/str/bytes/int/float/bool/None)"
    )


def canonical_bytes(payload) -> bytes:
    """Serialize a validated plain-data payload deterministically.

    Pickle protocol 4 of a pure-data tree is a stable byte stream across
    processes and platforms (dict order is insertion order, which for a
    deterministic simulation is itself deterministic).
    """
    validate_plain(payload)
    return pickle.dumps(payload, protocol=4)


def payload_digest(payload) -> str:
    """SHA-256 hex digest of the canonical serialization."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


def diff_states(expected, actual, path: str = "", limit: int = 8) -> list[str]:
    """First ``limit`` divergences between two plain-data trees.

    Powers :class:`RestoreMismatchError` messages: a resume that fails
    verification names the exact layer fields that diverged instead of
    just two unequal digests.
    """
    out: list[str] = []
    _diff(expected, actual, path or "state", out, limit)
    return out


def _diff(expected, actual, path, out, limit) -> None:
    if len(out) >= limit:
        return
    if type(expected) is not type(actual) and not (
        isinstance(expected, (int, float))
        and isinstance(actual, (int, float))
    ):
        out.append(
            f"{path}: type {type(expected).__name__} != "
            f"{type(actual).__name__}"
        )
        return
    if isinstance(expected, dict):
        for key in sorted(expected.keys() | actual.keys(), key=repr):
            if len(out) >= limit:
                return
            if key not in actual:
                out.append(f"{path}[{key!r}]: missing in replayed state")
            elif key not in expected:
                out.append(f"{path}[{key!r}]: unexpected in replayed state")
            else:
                _diff(expected[key], actual[key], f"{path}[{key!r}]",
                      out, limit)
        return
    if isinstance(expected, (list, tuple)):
        if len(expected) != len(actual):
            out.append(
                f"{path}: length {len(expected)} != {len(actual)}"
            )
            return
        for index, (e, a) in enumerate(zip(expected, actual)):
            if len(out) >= limit:
                return
            _diff(e, a, f"{path}[{index}]", out, limit)
        return
    if isinstance(expected, float) and isinstance(actual, float):
        # repr equality is bit-exact for floats and, unlike ``==``, treats
        # NaN as equal to NaN (fault-injected samples carry NaNs) while
        # still distinguishing -0.0 from 0.0.
        if repr(expected) != repr(actual):
            out.append(f"{path}: {expected!r} != {actual!r}")
        return
    if expected != actual:
        out.append(f"{path}: {expected!r} != {actual!r}")


# ----------------------------------------------------------------------
# RNG state helpers
# ----------------------------------------------------------------------
def _plainify(value):
    """Recursively convert numpy scalars inside a state tree to Python."""
    if isinstance(value, dict):
        return {key: _plainify(sub) for key, sub in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plainify(sub) for sub in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def generator_state(gen: np.random.Generator) -> dict:
    """A numpy Generator's bit-generator state as plain data."""
    return _plainify(gen.bit_generator.state)


def set_generator_state(gen: np.random.Generator, state: dict) -> None:
    """Restore a numpy Generator to a previously captured state."""
    gen.bit_generator.state = state
