"""Crash-consistent checkpoint persistence.

A checkpoint file is::

    REPRO-CKPT\\n
    <sha256 hex of body>\\n
    <pickled plain-data body>

where the body is ``{"schema", "index", "sim_time", "config", "layers"}``.
Writes are atomic: the body goes to a temporary file in the same
directory, is flushed and fsynced, and is then ``os.replace``d over the
final name -- a SIGKILL at any instant leaves either the complete old
file or the complete new file, never a torn one.  Loads verify the magic
header, the digest, and the schema version before anything else touches
the body; a corrupt or version-mismatched file raises a
:class:`~repro.checkpoint.state.CorruptCheckpointError` /
:class:`~repro.checkpoint.state.SchemaMismatchError` with the offending
path in the message, and is never silently loaded.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re

from repro.checkpoint.state import (
    SCHEMA_VERSION,
    CorruptCheckpointError,
    SchemaMismatchError,
    canonical_bytes,
)

_MAGIC = b"REPRO-CKPT\n"
_NAME_RE = re.compile(r"^checkpoint-(\d{6})\.ckpt$")


class CheckpointManager:
    """Writes, prunes, validates, and loads checkpoints in one directory."""

    def __init__(self, directory: str, keep: int = 4) -> None:
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = directory
        self.keep = keep
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, index: int) -> str:
        """Canonical file path of checkpoint ``index``."""
        return os.path.join(self.directory, f"checkpoint-{index:06d}.ckpt")

    def save(self, index: int, sim_time: float, config: dict,
             layers: dict) -> str:
        """Atomically persist one checkpoint; returns its path."""
        body = {
            "schema": SCHEMA_VERSION,
            "index": int(index),
            "sim_time": float(sim_time),
            "config": config,
            "layers": layers,
        }
        blob = canonical_bytes(body)
        digest = hashlib.sha256(blob).hexdigest()
        final = self.path_for(index)
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(digest.encode("ascii") + b"\n")
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._prune()
        return final

    def _prune(self) -> None:
        indices = self.indices()
        for index in indices[: max(0, len(indices) - self.keep)]:
            try:
                os.remove(self.path_for(index))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # ------------------------------------------------------------------
    def indices(self) -> list[int]:
        """Sorted checkpoint indices present in the directory."""
        out = []
        for name in os.listdir(self.directory):
            match = _NAME_RE.match(name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def latest_path(self) -> str | None:
        """Path of the highest-index checkpoint, or ``None`` if empty."""
        indices = self.indices()
        return self.path_for(indices[-1]) if indices else None

    def load(self, path: str) -> dict:
        """Validate and deserialize one checkpoint file.

        Returns the body dict.  Every failure mode raises a dedicated,
        descriptive error -- nothing is ever silently coerced.
        """
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CorruptCheckpointError(
                f"{path}: cannot read checkpoint: {exc}"
            ) from exc
        if not raw.startswith(_MAGIC):
            raise CorruptCheckpointError(
                f"{path}: missing checkpoint magic header"
            )
        rest = raw[len(_MAGIC):]
        newline = rest.find(b"\n")
        if newline != 64:
            raise CorruptCheckpointError(
                f"{path}: malformed digest header"
            )
        stored_digest = rest[:64].decode("ascii", errors="replace")
        blob = rest[65:]
        actual_digest = hashlib.sha256(blob).hexdigest()
        if actual_digest != stored_digest:
            raise CorruptCheckpointError(
                f"{path}: integrity digest mismatch "
                f"(stored {stored_digest[:12]}..., "
                f"computed {actual_digest[:12]}...)"
            )
        try:
            body = pickle.loads(blob)
        except Exception as exc:
            raise CorruptCheckpointError(
                f"{path}: body does not deserialize: {exc}"
            ) from exc
        if not isinstance(body, dict) or "schema" not in body:
            raise CorruptCheckpointError(
                f"{path}: body is not a checkpoint record"
            )
        if body["schema"] != SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"{path}: checkpoint schema {body['schema']!r} != "
                f"supported {SCHEMA_VERSION}; refusing to load"
            )
        for key in ("index", "sim_time", "config", "layers"):
            if key not in body:
                raise CorruptCheckpointError(
                    f"{path}: checkpoint record missing {key!r}"
                )
        return body

    def load_latest(self) -> dict:
        """Load the newest checkpoint; error if the directory is empty."""
        path = self.latest_path()
        if path is None:
            raise CorruptCheckpointError(
                f"{self.directory}: no checkpoints found"
            )
        return self.load(path)
