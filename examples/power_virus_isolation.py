#!/usr/bin/env python3
"""Power-virus isolation and fair power capping (paper Section 3.4/4.3).

A Google App Engine-style cloud workload (Vosao CMS) fully utilizes the
SandyBridge machine.  Mid-run, power viruses -- trivially simple
cache/memory-stomping requests -- start arriving and spike the package
power.  With power containers, the OS identifies the virus *requests* (not
just a hot core) and throttles only them via per-request duty-cycle
modulation, holding the system at its power target while normal requests
run at almost full speed.

Run:  python examples/power_virus_isolation.py
"""

import os

from repro.analysis import run_conditioning_experiment
from repro.core import calibrate_machine
from repro.hardware import SANDYBRIDGE


# REPRO_QUICK=1 (set by the CI examples lane) shrinks simulated durations
# so every example still runs end-to-end but finishes in seconds.
QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")

DURATION = 4.0 if QUICK else 12.0
VIRUS_START = 2.0 if QUICK else 6.0


def sparkline(values, lo, hi, width=60):
    """Render a power trace as a compact ASCII sparkline."""
    blocks = " .:-=+*#%@"
    step = max(len(values) // width, 1)
    chars = []
    for i in range(0, len(values), step):
        window = values[i:i + step]
        level = (sum(window) / len(window) - lo) / (hi - lo)
        level = min(max(level, 0.0), 0.999)
        chars.append(blocks[int(level * len(blocks))])
    return "".join(chars)


def main() -> None:
    print("calibrating SandyBridge ...")
    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1 if QUICK else 0.25)

    outcomes = {}
    for conditioned in (False, True):
        label = "conditioned" if conditioned else "original"
        print(f"running {label} system ({DURATION:.0f} simulated seconds, "
              f"viruses start at t={VIRUS_START:.0f}s) ...")
        outcomes[conditioned] = run_conditioning_experiment(
            SANDYBRIDGE, calibration, conditioned=conditioned,
            duration=DURATION, virus_start=VIRUS_START,
        )

    target = outcomes[True].target_active_watts
    print(f"\npackage active power traces (target {target:.0f} W, "
          f"viruses from t={VIRUS_START:.0f}s):\n")
    for conditioned, outcome in outcomes.items():
        values = [w for _t, w in outcome.power_trace]
        label = "conditioned" if conditioned else "original   "
        print(f"  {label}  |{sparkline(values, 35, 60)}|")
    print(f"               0s{' ' * 52}{DURATION:.0f}s")

    for conditioned, outcome in outcomes.items():
        label = "conditioned" if conditioned else "original"
        print(f"\n{label} system, after viruses arrive:")
        print(f"   mean power : {outcome.mean_power(VIRUS_START + 0.5, DURATION):5.1f} W")
        print(f"   peak power : {outcome.peak_power(VIRUS_START + 0.5, DURATION):5.1f} W")

    conditioned = outcomes[True]
    vosao = conditioned.mean_duty(lambda r: r in ("read", "write"))
    virus = conditioned.mean_duty(lambda r: r == "virus")
    print("\nfairness of the throttling (conditioned system):")
    print(f"   normal Vosao requests : {(1 - vosao) * 100:5.1f} % average slowdown")
    print(f"   power viruses         : {(1 - virus) * 100:5.1f} % average slowdown")
    print("\nA full-machine cap would have slowed *every* request; power "
          "containers penalize only the power-hungry ones.")


if __name__ == "__main__":
    main()
