#!/usr/bin/env python3
"""Energy-aware request distribution on a heterogeneous cluster (Section 4.4).

Two machines -- a 2011 SandyBridge and a 2006 Woodcrest -- serve a combined
GAE-Vosao + RSA-crypto workload.  Power containers profile each request
type's energy on each machine; the cross-machine energy ratio reveals that
RSA has a strong affinity for the newer machine (ratio ~0.22) while other
work is cheap to displace.  The workload-heterogeneity-aware dispatcher
exploits this, saving substantial energy over policies that ignore either
machine or workload heterogeneity.

Run:  python examples/heterogeneous_cluster.py
"""

import os

from repro.core import calibrate_machine
from repro.hardware import SANDYBRIDGE, WOODCREST
from repro.server import (
    Dispatcher,
    HeterogeneousCluster,
    MachineHeterogeneityAwarePolicy,
    SimpleLoadBalancePolicy,
    WorkloadHeterogeneityAwarePolicy,
)
from repro.sim import RngHub
from repro.workloads import GaeVosaoWorkload, RsaCryptoWorkload


# REPRO_QUICK=1 (set by the CI examples lane) shrinks simulated durations
# so every example still runs end-to-end but finishes in seconds.
QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")

DURATION = 4.0 if QUICK else 10.0
WARMUP = 1.0 if QUICK else 2.0


def run_policy(name, policy, calibrations):
    cluster = HeterogeneousCluster()
    cluster.add_machine(SANDYBRIDGE, calibrations["sandybridge"])
    cluster.add_machine(WOODCREST, calibrations["woodcrest"])
    vosao, rsa = GaeVosaoWorkload(), RsaCryptoWorkload()
    cluster.build_workload(vosao)
    cluster.build_workload(rsa)

    # 50/50 load composition, offered at the most the simple balance can
    # sustain (Woodcrest saturates first under an even split).
    dv = vosao.mean_demand_seconds("sandybridge")
    dr = rsa.mean_demand_seconds("sandybridge")
    share_vosao, share_rsa = dr / (dv + dr), dv / (dv + dr)
    demand_wc = (share_vosao * vosao.mean_demand_seconds("woodcrest")
                 + share_rsa * rsa.mean_demand_seconds("woodcrest"))
    rate = 0.95 * 2 * WOODCREST.n_cores / demand_wc

    dispatcher = Dispatcher(
        cluster, [(vosao, share_vosao), (rsa, share_rsa)], policy, rate,
        RngHub(7).stream("arrivals"),
    )
    dispatcher.start(DURATION)
    cluster.simulator.run_until(WARMUP)
    cluster.mark_energy()
    cluster.simulator.run_until(DURATION)
    for member in cluster.machines:
        member.facility.flush()

    window = DURATION - WARMUP
    watts = {
        m.name: m.active_joules_since_mark() / window
        for m in cluster.machines
    }
    print(f"\n{name}:")
    print(f"   energy rate : SandyBridge {watts['sandybridge']:5.1f} W + "
          f"Woodcrest {watts['woodcrest']:5.1f} W = "
          f"{sum(watts.values()):6.1f} W")
    print(f"   response    : Vosao "
          f"{dispatcher.mean_response_time('gae-vosao', since=WARMUP) * 1e3:6.0f} ms, "
          f"RSA {dispatcher.mean_response_time('rsa-crypto', since=WARMUP) * 1e3:6.0f} ms")
    if dispatcher.profiles.has_profile("woodcrest", "rsa-crypto:key-large"):
        ratio = dispatcher.profiles.ratio(
            "rsa-crypto:key-large", "sandybridge", "woodcrest"
        )
        print(f"   learned cross-machine energy ratio for RSA(large): {ratio:.2f}")
    return sum(watts.values())


def main() -> None:
    print("calibrating both machines ...")
    calibrations = {
        spec.name: calibrate_machine(spec, duration=0.1 if QUICK else 0.25)
        for spec in (SANDYBRIDGE, WOODCREST)
    }
    totals = {}
    for name, policy in (
        ("simple load balance", SimpleLoadBalancePolicy()),
        ("machine heterogeneity-aware",
         MachineHeterogeneityAwarePolicy("sandybridge", "woodcrest")),
        ("workload heterogeneity-aware (power containers)",
         WorkloadHeterogeneityAwarePolicy("sandybridge", "woodcrest")),
    ):
        totals[name] = run_policy(name, policy, calibrations)

    simple = totals["simple load balance"]
    machine = totals["machine heterogeneity-aware"]
    workload = totals["workload heterogeneity-aware (power containers)"]
    print(f"\nworkload-aware distribution saves "
          f"{(1 - workload / simple) * 100:.0f}% vs simple balance and "
          f"{(1 - workload / machine) * 100:.0f}% vs machine-aware "
          f"(paper: ~30% and ~25%).")


if __name__ == "__main__":
    main()
