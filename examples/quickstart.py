#!/usr/bin/env python3
"""Quickstart: per-request power and energy accounting in five steps.

1. Calibrate the simulated SandyBridge machine's power model offline.
2. Build a machine + kernel and attach the power-container facility
   (with the on-chip meter wired for online recalibration).
3. Serve a Solr-like search workload at half load.
4. Print per-request power/energy statistics -- the facility's core output.
5. Validate: summed request energy matches the measured system power.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro.analysis import relative_error
from repro.core import calibrate_machine
from repro.hardware import SANDYBRIDGE
from repro.workloads import SolrWorkload, run_workload



# REPRO_QUICK=1 (set by the CI examples lane) shrinks simulated durations
# so every example still runs end-to-end but finishes in seconds.
QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")


def main() -> None:
    print("== 1. Offline calibration (Section 4.1 microbenchmarks) ==")
    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1 if QUICK else 0.25)
    table = calibration.cmax_table()
    for name, watts in table.items():
        print(f"   C*Mmax[{name:10s}] = {watts:6.2f} W")
    print(f"   idle power           = {calibration.idle_watts:6.2f} W")

    duration = 1.0 if QUICK else 4.0
    print(f"\n== 2+3. Serve Solr at half load for {duration:.0f} simulated "
          "second(s) ==")
    run = run_workload(
        SolrWorkload(), SANDYBRIDGE, calibration,
        load_fraction=0.5, duration=duration, warmup=0.0,
    )
    results = run.driver.results
    print(f"   completed requests : {len(results)}")
    print(f"   mean response time : {run.driver.mean_response_time() * 1e3:.1f} ms")

    print("\n== 4. Per-request power containers ==")
    for result in results[:5]:
        stats = result.container.stats
        print(
            f"   {result.container.label:14s} "
            f"cpu={stats.cpu_seconds * 1e3:6.2f} ms  "
            f"energy={result.energy():.4f} J  "
            f"mean power={result.mean_power():5.2f} W"
        )
    energies = [r.energy() for r in results]
    print(f"   ... ({len(results)} total; mean energy "
          f"{np.mean(energies):.4f} J, p90 {np.percentile(energies, 90):.4f} J)")

    print("\n== 5. Validation (the paper's Fig. 8 invariant) ==")
    measured = run.measured_active_joules / run.duration
    estimated = run.facility.registry.total_energy(run.facility.primary) / run.duration
    error = relative_error(estimated, measured)
    print(f"   measured system active power : {measured:6.2f} W")
    print(f"   sum of request energy / time : {estimated:6.2f} W")
    print(f"   validation error             : {error * 100:5.2f} %")
    assert error < 0.1


if __name__ == "__main__":
    main()
