#!/usr/bin/env python3
"""Modelling your own service with power containers.

Downstream users rarely run WeBWorK; they want to know what power
containers would tell them about *their* pipeline.  This example sketches a
three-stage API service with the synthetic workload builder, runs it at 60%
load on the SandyBridge model, prints per-stage attribution for a sample
request, and exports the per-request records to CSV for plotting.

Run:  python examples/custom_service.py
"""

import os
import tempfile
from pathlib import Path

from repro.analysis import export_requests_csv
from repro.core import calibrate_machine
from repro.hardware import RateProfile, SANDYBRIDGE
from repro.workloads import StageSpec, SyntheticWorkload, run_workload

PARSE = RateProfile(name="parse", ipc=1.6, cache_per_cycle=0.003)
DB = RateProfile(name="db", ipc=0.8, cache_per_cycle=0.012,
                 mem_per_cycle=0.005)
RENDER = RateProfile(name="render", ipc=1.3, flops_per_cycle=0.4,
                     cache_per_cycle=0.006)



# REPRO_QUICK=1 (set by the CI examples lane) shrinks simulated durations
# so every example still runs end-to-end but finishes in seconds.
QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")


def main() -> None:
    workload = SyntheticWorkload(
        name="my-api",
        stages=[
            StageSpec("parse", cycles=3e6, profile=PARSE),
            StageSpec("db", cycles=9e6, profile=DB, kind="service",
                      io_bytes=16384),
            StageSpec("render", cycles=6e6, profile=RENDER, kind="fork"),
        ],
        demand_jitter=0.2,
        n_workers=8,
    )

    print("calibrating SandyBridge ...")
    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1 if QUICK else 0.25)
    print("serving my-api at 60% load for 4 simulated seconds ...")
    run = run_workload(
        workload, SANDYBRIDGE, calibration,
        load_fraction=0.6, duration=1.5 if QUICK else 4.0, warmup=0.0,
    )

    print(f"\ncompleted {run.driver.completed} requests; measured "
          f"{run.measured_active_watts:.1f} W active")

    sample = next(
        r for r in run.driver.results
        if r.container.stats.stage_energy_joules.get("render")
    )
    stats = sample.container.stats
    print("\nper-stage attribution of one request (Fig. 4 style):")
    for stage, joules in sorted(stats.stage_energy_joules.items(),
                                key=lambda kv: -kv[1]):
        watts = sample.container.stats.stage_mean_power(stage)
        print(f"   {stage:18s} {watts:5.1f} W  {joules:.4f} J")
    print(f"   {'disk I/O':18s} {'':>7s}  "
          f"{stats.io_energy_joules:.4f} J")

    out = Path(tempfile.gettempdir()) / "my-api-requests.csv"
    export_requests_csv(out, run.driver.results)
    print(f"\nper-request records exported to {out}")
    print("columns: rtype, response_time, cpu_seconds, energy_joules, "
          "mean_power_watts, ...")


if __name__ == "__main__":
    main()
