#!/usr/bin/env python3
"""Tracing one request across a multi-stage server (paper Fig. 4).

A WeBWorK problem request flows through Apache/PHP processing, a MySQL
thread reached over a persistent socket, and forked latex/dvipng helper
processes.  The power-container facility tracks the request context through
every hop -- socket segments, fork, wait4/exit -- entirely inside the OS,
with no application changes.  This example prints the captured flow and the
power/energy attributed at each point, like the paper's Fig. 4 annotations.

Run:  python examples/request_tracing.py
"""

import os

from repro.core import PowerContainerFacility, calibrate_machine
from repro.hardware import SANDYBRIDGE, build_machine
from repro.kernel import ContextTag, Kernel, Message
from repro.requests import RequestSpec
from repro.sim import Simulator, TraceRecorder
from repro.workloads import WeBWorKWorkload



# REPRO_QUICK=1 (set by the CI examples lane) shrinks simulated durations
# so every example still runs end-to-end but finishes in seconds.
QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")


def main() -> None:
    print("calibrating SandyBridge ...")
    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1 if QUICK else 0.25)

    sim = Simulator()
    machine = build_machine(SANDYBRIDGE, sim)
    trace = TraceRecorder()
    kernel = Kernel(machine, sim, trace=trace)
    facility = PowerContainerFacility(kernel, calibration)

    workload = WeBWorKWorkload(n_workers=2)
    server = workload.build_server(kernel, facility)
    server.client_side.on_message = lambda message: None

    container = facility.create_request_container(
        "webwork:traced", meta={"rtype": "standard"}
    )
    spec = RequestSpec(
        "standard",
        params={"problem_set": 451, "difficulty": 1.2, "image_cached": False},
    )
    server.inject(Message(
        nbytes=512, payload=(0, spec),
        tag=ContextTag(container_id=container.id),
    ))
    sim.run_until(0.5)
    facility.flush()

    print(f"\ncaptured request execution (container #{container.id}):\n")
    interesting = {"dispatch", "rebind", "send", "recv", "fork", "exit"}
    pid_names = {p.pid: p.name for p in kernel.processes.values()}
    shown = 0
    for event in trace:
        if event.kind not in interesting:
            continue
        detail = dict(event.detail)
        pid = detail.pop("pid", detail.pop("parent", None))
        who = pid_names.get(pid, f"pid{pid}")
        extras = ", ".join(f"{k}={v}" for k, v in detail.items())
        print(f"   [{event.time * 1e3:7.2f} ms] {event.kind:8s} {who:16s} {extras}")
        shown += 1
        if shown > 40:
            print("   ...")
            break

    stats = container.stats
    print("\nper-request attribution (the Fig. 4 annotations):")
    print(f"   cpu time   : {stats.cpu_seconds * 1e3:7.2f} ms across all stages")
    print(f"   energy     : {container.total_energy(facility.primary):7.4f} J "
          f"(incl. {stats.io_energy_joules:.4f} J of disk I/O)")
    print(f"   mean power : {container.mean_power(facility.primary):7.2f} W while scheduled")
    print(f"   events     : {stats.events.instructions / 1e6:.1f}M instructions, "
          f"{stats.events.cache_refs / 1e3:.0f}k LLC refs, "
          f"{stats.events.disk_bytes / 1024:.0f} KiB disk")


if __name__ == "__main__":
    main()
