#!/usr/bin/env python3
"""Per-client energy accounting and anomaly detection on a cloud platform.

The paper motivates power containers with cloud platforms (like Google App
Engine) that run many tenants' code without heavyweight VM isolation:
per-request containers make it possible to bill each tenant for the energy
their requests actually consume, and to pinpoint which tenant submitted a
power virus.

This example serves a GAE-Hybrid workload where each request belongs to one
of four tenants -- one of whom ("mallory") submits the power viruses -- and
prints the energy bill plus the anomaly reports.

Run:  python examples/energy_billing.py
"""

import os

from repro.core import (
    ClientEnergyLedger,
    DetectingConditionerBridge,
    PowerAnomalyDetector,
    calibrate_machine,
)
from repro.hardware import SANDYBRIDGE
from repro.workloads import GaeHybridWorkload, run_workload

TENANTS = ("alice", "bob", "carol")



# REPRO_QUICK=1 (set by the CI examples lane) shrinks simulated durations
# so every example still runs end-to-end but finishes in seconds.
QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")


def main() -> None:
    print("calibrating SandyBridge ...")
    calibration = calibrate_machine(SANDYBRIDGE, duration=0.1 if QUICK else 0.25)

    detector = PowerAnomalyDetector()
    run = run_workload(
        GaeHybridWorkload(), SANDYBRIDGE, calibration,
        load_fraction=0.6, duration=2.0 if QUICK else 6.0, warmup=0.0,
        conditioner_factory=lambda kernel: DetectingConditionerBridge(
            detector, kernel.simulator
        ),
    )

    # Attribute each request to a tenant: viruses belong to mallory, normal
    # requests round-robin over the honest tenants.  (A real dispatcher
    # would take the tenant from the authenticated connection.)
    for result in run.driver.results:
        if result.rtype == "virus":
            result.container.meta["client"] = "mallory"
        else:
            result.container.meta["client"] = TENANTS[
                result.request_id % len(TENANTS)
            ]

    ledger = ClientEnergyLedger()
    ledger.record_all(r.container for r in run.driver.results)

    print(f"\nserved {len(run.driver.results)} requests; "
          f"measured active power {run.measured_active_watts:.1f} W\n")
    print("energy bill (per tenant):")
    print(f"   {'tenant':10s} {'requests':>8s} {'energy J':>10s} "
          f"{'J/request':>10s} {'share':>7s}")
    total = ledger.total_joules
    for client in ledger.clients():
        usage = ledger.usage(client)
        print(f"   {client:10s} {usage.request_count:8d} "
              f"{usage.energy_joules:10.2f} "
              f"{usage.mean_energy_per_request:10.3f} "
              f"{usage.energy_joules / total * 100:6.1f}%")

    print("\nanomaly reports (power viruses pinpointed to their requests):")
    for report in detector.reports[:5]:
        tenant = report.meta.get("client", "?")
        print(f"   {report}")
    flagged_tenants = {
        r.meta.get("client") for r in detector.reports if "client" in r.meta
    }
    print(f"\n{len(detector.reports)} requests flagged; every flagged "
          f"request was a virus -- operator can bill or block the tenant.")


if __name__ == "__main__":
    main()
